//! The `perf` experiment: hot-path microbenchmarks with deterministic
//! work counters and (injected) wall-clock statistics.
//!
//! Every benchmark is a pure function returning [`Counters`] — exact,
//! machine-independent work counts (events popped, packets simulated,
//! bytes encoded). The wall clock is *injected*: this crate never reads
//! `Instant` (the repo-wide lint bans it outside `bench::perf`), so the
//! measurement engine calls whatever monotonic nanosecond source the
//! bench harness installs via [`install_wall_clock`]. Without an
//! installed clock — e.g. under `cargo test` — all wall statistics are
//! zero and only the exact counters are checked, which is precisely
//! what the `--smoke` CI gate wants: wall clock is advisory, ops are
//! law.
//!
//! The default hook emits the `BENCH_8.json` trajectory artifact
//! (schema `baldur-perf/1`): per-benchmark wall statistics
//! (median/min/MAD with outlier rejection), the exact counters, derived
//! ops/sec, the repo git revision, and before/after deltas against the
//! retained pre-optimization baselines (`Encoder::encode_data_baseline`,
//! `Decoder::decode_baseline`, `CircuitSim::run_reference`).

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

use super::EvalConfig;
use crate::error::BaldurError;
use crate::net::config::BaldurParams;
use crate::net::runner::{run, NetworkKind, RunConfig, Workload};
use crate::net::traffic::Pattern;
use crate::phy::eightbtenb::{Code10, Decoder, Encoder};
use crate::phy::length_code::LengthCode;
use crate::phy::packet_wave::assemble;
use crate::phy::waveform::{Fs, BIT_PERIOD_FS};
use crate::registry::{
    fmt_bytes, fmt_ns, json_of, outln, section, Axis, AxisKind, ExperimentSpec, Mode, Output,
    Params,
};
use crate::sim::rng::StreamRng;
use crate::sim::{Scheduler, Time};
use crate::sweep::Sweep;
use crate::tl::netlist::{CircuitSim, Netlist, RunOutcome};
use crate::tl::switch::{build_switch, SwitchParams};

const LABEL: &str = "perf";
const VERSION: u32 = 1;

/// Schema tag stamped into every emitted report.
pub const SCHEMA: &str = "baldur-perf/1";

/// Floor on timed samples per benchmark (medians of fewer are noise).
pub const MIN_SAMPLES: usize = 3;

/// Nodes for the network-level benchmarks (small enough for seconds-long
/// samples, large enough to exercise arbitration and retransmission).
const PERF_NODES: u32 = 64;

/// Passes over the codec working set per sample (amortizes the
/// deterministic payload generation that both baseline and optimized
/// paths pay).
const CODEC_PASSES: usize = 8;

/// Bytes in the codec working set.
const CODEC_BYTES: usize = 64 * 1024;

// ---------------------------------------------------------------------------
// Injected wall clock + sample override (installed by `bench::perf`).
// ---------------------------------------------------------------------------

static WALL_CLOCK: OnceLock<fn() -> u64> = OnceLock::new();
static MEMORY_PROBE: OnceLock<fn() -> u64> = OnceLock::new();
static SAMPLE_OVERRIDE: OnceLock<usize> = OnceLock::new();

/// Installs the monotonic nanosecond source used for wall timing.
///
/// `bench::perf` (the only module the wall-clock lint exempts) calls
/// this before handing control to the registry runner. First install
/// wins; later calls are ignored. Without an install, every measurement
/// reports zero wall time and exact counters only.
pub fn install_wall_clock(clock: fn() -> u64) {
    let _ = WALL_CLOCK.set(clock);
}

/// Overrides the sample count (the `BALDUR_BENCH_SAMPLES` escape hatch,
/// parsed and validated by `bench::perf`). Wins over the `samples`
/// axis; values below [`MIN_SAMPLES`] are clamped up. First install
/// wins.
pub fn override_samples(n: usize) {
    let _ = SAMPLE_OVERRIDE.set(n);
}

fn now_ns() -> u64 {
    WALL_CLOCK.get().map_or(0, |clock| clock())
}

/// True once a wall-clock source has been installed.
pub fn wall_clock_installed() -> bool {
    WALL_CLOCK.get().is_some()
}

/// The installed monotonic clock, for experiments that time whole runs
/// (the `scaling` sweep). Zero without an installed clock — wall time is
/// advisory everywhere; exact counters are what gates.
pub fn wall_now_ns() -> u64 {
    now_ns()
}

/// Installs the peak-RSS probe (bytes of `VmHWM`, read by `bench::perf`
/// from `/proc/self/status` — the OS boundary stays on the bench side of
/// the clock lint wall). First install wins. Without an install, every
/// report carries zero peak RSS and memory stays advisory, exactly like
/// the wall clock.
pub fn install_memory_probe(probe: fn() -> u64) {
    let _ = MEMORY_PROBE.set(probe);
}

/// Peak resident-set size of the process in bytes, via the installed
/// probe; zero when none is installed (e.g. under `cargo test`).
pub fn peak_rss_bytes() -> u64 {
    MEMORY_PROBE.get().map_or(0, |probe| probe())
}

// ---------------------------------------------------------------------------
// Report schema.
// ---------------------------------------------------------------------------

/// Exact, machine-independent work counts of one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Primary unit of work (events popped, symbols coded, ...).
    pub ops: u64,
    /// Packets simulated (zero for the kernel/codec benches).
    pub packets: u64,
    /// Bytes encoded/decoded (zero for the non-codec benches).
    pub bytes: u64,
}

/// Robust wall-clock statistics over the timed samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WallStats {
    /// Median of the surviving samples, ns.
    pub median_ns: f64,
    /// Minimum of the surviving samples, ns.
    pub min_ns: f64,
    /// Median absolute deviation of the surviving samples, ns.
    pub mad_ns: f64,
    /// Timed samples taken.
    pub samples: u64,
    /// Samples rejected as outliers (deviation > 8 x MAD).
    pub rejected: u64,
}

impl WallStats {
    /// Computes the statistics from raw per-sample wall times.
    ///
    /// Outlier rejection: compute the median and the median absolute
    /// deviation (MAD); when the MAD is positive, drop samples more
    /// than `8 x MAD` from the median (a GC pause, a scheduler
    /// preemption) and recompute on the survivors.
    pub fn from_samples(samples_ns: &[f64]) -> WallStats {
        let mut all = samples_ns.to_vec();
        all.sort_by(f64::total_cmp);
        let med = median_of(&all);
        let mad = mad_of(&all, med);
        let kept: Vec<f64> = if mad > 0.0 {
            all.iter()
                .copied()
                .filter(|x| (x - med).abs() <= 8.0 * mad)
                .collect()
        } else {
            all.clone()
        };
        let med2 = median_of(&kept);
        WallStats {
            median_ns: med2,
            min_ns: kept.first().copied().unwrap_or(0.0),
            mad_ns: mad_of(&kept, med2),
            samples: all.len() as u64,
            rejected: (all.len() - kept.len()) as u64,
        }
    }
}

fn median_of(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        0.0
    } else if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn mad_of(sorted: &[f64], median: f64) -> f64 {
    let mut dev: Vec<f64> = sorted.iter().map(|x| (x - median).abs()).collect();
    dev.sort_by(f64::total_cmp);
    median_of(&dev)
}

/// One measured benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Benchmark name.
    pub name: String,
    /// Exact work counters (identical across every sample, by
    /// construction — the engine errors out otherwise).
    pub counters: Counters,
    /// Wall-clock statistics (all-zero when no clock is installed).
    pub wall: WallStats,
    /// `ops / median_ns`, in operations per second (zero without a
    /// clock).
    pub ops_per_sec: f64,
}

/// A before/after pair against a retained pre-optimization baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaRecord {
    /// The optimized benchmark's name.
    pub name: String,
    /// The baseline measurement (same workload through the retained
    /// `*_baseline` implementation).
    pub baseline: BenchRecord,
    /// The optimized measurement (copied from the main table).
    pub optimized: BenchRecord,
    /// `baseline.median_ns / optimized.median_ns`.
    pub speedup_median: f64,
}

/// The `BENCH_8.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Repo git revision at emission time (`unknown` outside a
    /// checkout).
    pub git_rev: String,
    /// Resolved worker-thread count (`BALDUR_THREADS`-aware).
    pub threads: usize,
    /// Timed samples per benchmark.
    pub samples: usize,
    /// One record per hot-path benchmark.
    pub benches: Vec<BenchRecord>,
    /// Before/after deltas against the retained baselines.
    pub deltas: Vec<DeltaRecord>,
    /// Peak resident-set size in bytes at emission time (zero when no
    /// memory probe is installed; absent in pre-probe artifacts).
    #[serde(default)]
    pub peak_rss_bytes: u64,
}

/// Counters-only view of the benchmark table — the shape the
/// `results/golden/perf_ops.json` CI gate snapshots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpsReport {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// One row per benchmark, in table order.
    pub benches: Vec<OpsRow>,
}

/// One row of [`OpsReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpsRow {
    /// Benchmark name.
    pub name: String,
    /// Exact counters from one clock-free run.
    pub counters: Counters,
}

// ---------------------------------------------------------------------------
// The benchmark workloads.
// ---------------------------------------------------------------------------

struct BenchDef {
    name: &'static str,
    work: fn() -> Counters,
}

struct DeltaDef {
    /// Name of the optimized benchmark in [`BENCHES`].
    optimized: &'static str,
    /// The same workload through the retained baseline implementation.
    baseline: fn() -> Counters,
}

static BENCHES: [BenchDef; 7] = [
    BenchDef {
        name: "sched_heap_push_pop",
        work: sched_heap,
    },
    BenchDef {
        name: "sched_calendar_push_pop",
        work: sched_calendar,
    },
    BenchDef {
        name: "codec_encode",
        work: codec_encode,
    },
    BenchDef {
        name: "codec_decode",
        work: codec_decode,
    },
    BenchDef {
        name: "tl_gate_loop",
        work: tl_gate_loop,
    },
    BenchDef {
        name: "baldur_arb_retx",
        work: baldur_arb_retx,
    },
    BenchDef {
        name: "fig6_throughput",
        work: fig6_throughput,
    },
];

static DELTAS: [DeltaDef; 3] = [
    DeltaDef {
        optimized: "codec_encode",
        baseline: codec_encode_baseline,
    },
    DeltaDef {
        optimized: "codec_decode",
        baseline: codec_decode_baseline,
    },
    DeltaDef {
        optimized: "tl_gate_loop",
        baseline: tl_gate_loop_baseline,
    },
];

/// Scheduler push/pop under a bursty, tie-heavy arrival process: ten
/// waves of 10k pushes clustered into a 50 ns window, half-drained
/// between waves, fully drained at the end. Identical event sequence on
/// both queue backends (the differential property test proves it).
fn sched_with(mut sched: Scheduler<u64>) -> Counters {
    let mut rng = StreamRng::named(0xBA1D, "perfschd", 0);
    let mut acc = 0u64;
    let mut pushes = 0u64;
    let mut pops = 0u64;
    for wave in 0..10u64 {
        let base = sched.now().as_ps();
        for i in 0..10_000u64 {
            let at = Time::from_ps(base + rng.gen_range(0..50_000u64));
            sched.schedule_at(at, wave * 10_000 + i);
            pushes += 1;
        }
        for _ in 0..5_000 {
            // 10k pushes, 5k pops per wave: the queue cannot drain here,
            // and if it somehow did the ops golden would catch it.
            let Some((at, seq, ev)) = sched.pop_scheduled() else {
                break;
            };
            acc ^= at.as_ps().wrapping_mul(31) ^ seq ^ ev;
            pops += 1;
        }
    }
    while let Some((at, seq, ev)) = sched.pop_scheduled() {
        acc ^= at.as_ps().wrapping_mul(31) ^ seq ^ ev;
        pops += 1;
    }
    std::hint::black_box(acc);
    Counters {
        ops: pushes + pops,
        packets: 0,
        bytes: 0,
    }
}

fn sched_heap() -> Counters {
    // Pinned: `Scheduler::new()` self-promotes to the calendar queue above
    // `PROMOTE_PENDING`, and this workload peaks well past it.
    sched_with(Scheduler::new_heap())
}

fn sched_calendar() -> Counters {
    sched_with(Scheduler::new_calendar())
}

fn codec_payload() -> Vec<u8> {
    let mut bytes = vec![0u8; CODEC_BYTES];
    StreamRng::named(0xBA1D, "perfcdc", 0).fill_bytes(&mut bytes);
    bytes
}

fn codec_encode_with(encode: fn(&mut Encoder, u8) -> Code10) -> Counters {
    let bytes = codec_payload();
    let mut acc = 0u16;
    let mut ops = 0u64;
    for _ in 0..CODEC_PASSES {
        let mut enc = Encoder::new();
        for &b in &bytes {
            acc ^= encode(&mut enc, b).0;
            ops += 1;
        }
    }
    std::hint::black_box(acc);
    Counters {
        ops,
        packets: 0,
        bytes: ops,
    }
}

fn codec_encode() -> Counters {
    codec_encode_with(Encoder::encode_data)
}

fn codec_encode_baseline() -> Counters {
    codec_encode_with(Encoder::encode_data_baseline)
}

fn codec_codes() -> Vec<Code10> {
    let bytes = codec_payload();
    let mut enc = Encoder::new();
    bytes.iter().map(|&b| enc.encode_data(b)).collect()
}

fn codec_decode_with(
    decode: fn(
        &mut Decoder,
        Code10,
    ) -> Result<crate::phy::eightbtenb::Symbol, crate::phy::eightbtenb::DecodeError>,
) -> Counters {
    let codes = codec_codes();
    let mut acc = 0u32;
    let mut ops = 0u64;
    for _ in 0..CODEC_PASSES {
        let mut dec = Decoder::new();
        for &c in &codes {
            match decode(&mut dec, c) {
                Ok(sym) => acc = acc.wrapping_add(u32::from(sym.byte())),
                Err(_) => acc = acc.wrapping_add(0x1000),
            }
            ops += 1;
        }
    }
    std::hint::black_box(acc);
    Counters {
        ops,
        packets: 0,
        bytes: ops,
    }
}

fn codec_decode() -> Counters {
    codec_decode_with(Decoder::decode)
}

fn codec_decode_baseline() -> Counters {
    codec_decode_with(Decoder::decode_baseline)
}

/// A 2x2 switch with both inputs driven (the contention case exercises
/// the full gate population), probes on both outputs.
fn tl_build() -> (CircuitSim, Fs) {
    let code = LengthCode::paper();
    let t = BIT_PERIOD_FS;
    let mut n = Netlist::new();
    let sw = build_switch(&mut n, SwitchParams::paper());
    let mut sim = CircuitSim::new(n);
    sim.probe(sw.outputs[0]);
    sim.probe(sw.outputs[1]);
    let p0 = assemble(&code, &[false, true], b"PERFPACKET-A", 10 * t);
    let p1 = assemble(&code, &[false, false], b"PERFPACKET-B", 12 * t);
    sim.drive(sw.inputs[0], &p0.wave);
    sim.drive(sw.inputs[1], &p1.wave);
    (sim, p0.end.max(p1.end) + 3_000_000)
}

fn tl_gate_loop() -> Counters {
    let (mut sim, horizon) = tl_build();
    let out = sim.run(horizon);
    assert!(matches!(out, RunOutcome::Settled { .. }), "{out:?}");
    Counters {
        ops: sim.events_executed(),
        packets: 2,
        bytes: 24,
    }
}

fn tl_gate_loop_baseline() -> Counters {
    let (sim, horizon) = tl_build();
    let r = sim.run_reference(horizon);
    assert!(
        matches!(r.outcome, RunOutcome::Settled { .. }),
        "{:?}",
        r.outcome
    );
    Counters {
        ops: r.events,
        packets: 2,
        bytes: 24,
    }
}

/// A full Baldur run at high load: random permutation at 0.9 forces the
/// arbitration + exponential-backoff retransmission machinery.
fn baldur_arb_retx() -> Counters {
    let net = NetworkKind::Baldur(BaldurParams::paper_for(u64::from(PERF_NODES)));
    let rc = RunConfig::new(
        PERF_NODES,
        net,
        Workload::Synthetic {
            pattern: Pattern::RandomPermutation,
            load: 0.9,
            packets_per_node: 60,
        },
    );
    let r = run(&rc);
    Counters {
        ops: r.events,
        packets: r.delivered,
        bytes: 0,
    }
}

/// A whole fig6-shaped sweep (all four patterns, Baldur, one load)
/// through the parallel sweep harness — the end-to-end throughput path,
/// and the benchmark the `BALDUR_THREADS=1/8` CI gate leans on.
fn fig6_throughput() -> Counters {
    let cfg = EvalConfig {
        nodes: PERF_NODES,
        packets_per_node: 40,
        pingpong_rounds: 10,
        seed: 0xBA1D,
        threads: 0,
    };
    let sw = cfg.sweep();
    let lineup = vec![(
        "baldur".to_string(),
        NetworkKind::Baldur(BaldurParams::paper_for(u64::from(cfg.nodes))),
    )];
    let rows = super::fig6::figure6_lineup_on(&sw, &cfg, &lineup, &[0.5]);
    let mut ops = 0u64;
    let mut packets = 0u64;
    for row in &rows {
        ops += row.report.events;
        packets += row.report.delivered;
    }
    Counters {
        ops,
        packets,
        bytes: 0,
    }
}

// ---------------------------------------------------------------------------
// The measurement engine.
// ---------------------------------------------------------------------------

/// Runs `work` once untimed (warmup, capturing the expected counters),
/// then `samples` timed runs, each checked to reproduce the warmup
/// counters exactly — a nondeterministic workload is a hard error, not
/// a noisy number.
fn measure(name: &str, samples: usize, work: fn() -> Counters) -> Result<BenchRecord, BaldurError> {
    let expected = work();
    let mut wall = Vec::with_capacity(samples);
    for i in 0..samples {
        let t0 = now_ns();
        let got = work();
        let t1 = now_ns();
        if got != expected {
            return Err(BaldurError::Experiment {
                name: "perf".to_string(),
                message: format!(
                    "bench `{name}` sample {i}: counters diverged from warmup \
                     ({got:?} vs {expected:?}) — the workload is not deterministic"
                ),
            });
        }
        wall.push(t1.saturating_sub(t0) as f64);
    }
    let stats = WallStats::from_samples(&wall);
    let ops_per_sec = if stats.median_ns > 0.0 {
        expected.ops as f64 / (stats.median_ns * 1e-9)
    } else {
        0.0
    };
    Ok(BenchRecord {
        name: name.to_string(),
        counters: expected,
        wall: stats,
        ops_per_sec,
    })
}

/// One clock-free pass over every benchmark: the exact-counters view
/// the CI gate and the freshness test snapshot.
pub fn ops_report() -> OpsReport {
    OpsReport {
        schema: SCHEMA.to_string(),
        benches: BENCHES
            .iter()
            .map(|b| OpsRow {
                name: b.name.to_string(),
                counters: (b.work)(),
            })
            .collect(),
    }
}

/// Measures every benchmark and every baseline delta at `samples` timed
/// samples each. This is the engine behind the default hook; tests call
/// it directly (clock-free) to validate the schema.
pub fn bench_report(samples: usize) -> Result<BenchReport, BaldurError> {
    let samples = samples.max(MIN_SAMPLES);
    let mut benches = Vec::with_capacity(BENCHES.len());
    for b in &BENCHES {
        benches.push(measure(b.name, samples, b.work)?);
    }
    let mut deltas = Vec::with_capacity(DELTAS.len());
    for d in &DELTAS {
        let optimized = benches
            .iter()
            .find(|r| r.name == d.optimized)
            .cloned()
            .ok_or_else(|| BaldurError::Experiment {
                name: "perf".to_string(),
                message: format!("delta references unknown bench `{}`", d.optimized),
            })?;
        let baseline = measure(&format!("{}_baseline", d.optimized), samples, d.baseline)?;
        let speedup_median = if optimized.wall.median_ns > 0.0 {
            baseline.wall.median_ns / optimized.wall.median_ns
        } else {
            0.0
        };
        deltas.push(DeltaRecord {
            name: d.optimized.to_string(),
            baseline,
            optimized,
            speedup_median,
        });
    }
    Ok(BenchReport {
        schema: SCHEMA.to_string(),
        git_rev: git_rev(),
        threads: crate::sim::par::thread_count(0),
        samples,
        benches,
        deltas,
        peak_rss_bytes: peak_rss_bytes(),
    })
}

/// Resolves the sample count: the validated `BALDUR_BENCH_SAMPLES`
/// override (installed by the bench harness) wins over the `samples`
/// axis; zero on the axis is a usage error; 1–2 clamp up to
/// [`MIN_SAMPLES`].
fn resolve_samples(p: &Params) -> Result<usize, BaldurError> {
    if let Some(&n) = SAMPLE_OVERRIDE.get() {
        return Ok(n.max(MIN_SAMPLES));
    }
    let n = p.u64("samples")? as usize;
    if n == 0 {
        return Err(BaldurError::InvalidParam {
            param: "samples".to_string(),
            message: "must be >= 1 (values below 3 clamp up to 3; 0 would measure nothing)"
                .to_string(),
        });
    }
    Ok(n.max(MIN_SAMPLES))
}

/// The repo's current git revision, resolved by hand from `.git` (no
/// subprocess): `HEAD` directly, through `refs/`, or through
/// `packed-refs`. `unknown` when any step fails.
fn git_rev() -> String {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let Ok(head) = std::fs::read_to_string(root.join(".git/HEAD")) else {
        return "unknown".to_string();
    };
    let head = head.trim();
    let Some(reference) = head.strip_prefix("ref: ") else {
        return head.to_string();
    };
    if let Ok(hash) = std::fs::read_to_string(root.join(".git").join(reference)) {
        return hash.trim().to_string();
    }
    if let Ok(packed) = std::fs::read_to_string(root.join(".git/packed-refs")) {
        for line in packed.lines() {
            if let Some((hash, name)) = line.split_once(' ') {
                if name.trim() == reference {
                    return hash.to_string();
                }
            }
        }
    }
    "unknown".to_string()
}

// ---------------------------------------------------------------------------
// Registry hooks.
// ---------------------------------------------------------------------------

fn run_hook(_sw: &Sweep, p: &Params) -> Result<Output, BaldurError> {
    let samples = resolve_samples(p)?;
    let report = bench_report(samples)?;
    let mut console = String::new();
    section(&mut console, "hot-path benchmarks");
    if !wall_clock_installed() {
        outln!(
            console,
            "(no wall clock installed: counters exact, times zero)"
        );
    }
    outln!(
        console,
        "{:<26} {:>14} {:>12} {:>12} {:>12} {:>14}",
        "bench",
        "ops",
        "median",
        "min",
        "mad",
        "ops/sec"
    );
    for b in &report.benches {
        outln!(
            console,
            "{:<26} {:>14} {:>12} {:>12} {:>12} {:>14.3e}",
            b.name,
            b.counters.ops,
            fmt_ns(b.wall.median_ns),
            fmt_ns(b.wall.min_ns),
            fmt_ns(b.wall.mad_ns),
            b.ops_per_sec
        );
    }
    section(&mut console, "deltas vs retained baselines");
    outln!(
        console,
        "{:<26} {:>14} {:>14} {:>10}",
        "bench",
        "baseline",
        "optimized",
        "speedup"
    );
    for d in &report.deltas {
        outln!(
            console,
            "{:<26} {:>14} {:>14} {:>9.2}x",
            d.name,
            fmt_ns(d.baseline.wall.median_ns),
            fmt_ns(d.optimized.wall.median_ns),
            d.speedup_median
        );
    }
    outln!(console);
    outln!(
        console,
        "git {} | {} threads | {} samples/bench | peak rss {}",
        report.git_rev,
        report.threads,
        report.samples,
        fmt_bytes(report.peak_rss_bytes)
    );
    Ok(Output {
        console,
        csv: None,
        json: Some(json_of("perf", &report)?),
        files: Vec::new(),
    })
}

/// The `--smoke` CI gate: two in-process counter passes must agree
/// byte-for-byte, and both must match the blessed
/// `results/golden/perf_ops.json` exactly. Wall clock is advisory — a
/// quick 3-sample delta is printed but never fails the gate.
fn smoke_hook(_sw: &Sweep, _p: &Params) -> Result<Output, BaldurError> {
    let first = ops_report();
    let second = ops_report();
    let first_json = json_of("perf", &first)?;
    let second_json = json_of("perf", &second)?;
    if first_json != second_json {
        return Err(BaldurError::Experiment {
            name: "perf".to_string(),
            message: "ops counters differ between two in-process passes — \
                      a benchmark workload is nondeterministic"
                .to_string(),
        });
    }
    let golden_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results/golden/perf_ops.json");
    let golden = std::fs::read_to_string(&golden_path).map_err(|e| BaldurError::Experiment {
        name: "perf".to_string(),
        message: format!(
            "read {}: {e} (bless it with ./ci.sh --bless)",
            golden_path.display()
        ),
    })?;
    if golden.trim_end() != first_json {
        let mismatch = match serde_json::from_str::<OpsReport>(&golden) {
            Ok(blessed) => describe_ops_mismatch(&blessed, &first),
            Err(e) => format!("golden does not parse as an OpsReport: {e:?}"),
        };
        return Err(BaldurError::Experiment {
            name: "perf".to_string(),
            message: format!(
                "work counters drifted from {}: {mismatch} — if the change is \
                 intentional, re-bless with ./ci.sh --bless",
                golden_path.display()
            ),
        });
    }
    let mut console = String::new();
    section(&mut console, "perf smoke");
    outln!(
        console,
        "counters: {} benches, two passes identical, golden match",
        first.benches.len()
    );
    if wall_clock_installed() {
        let opt = measure("codec_encode", MIN_SAMPLES, codec_encode)?;
        let base = measure("codec_encode_baseline", MIN_SAMPLES, codec_encode_baseline)?;
        let speedup = if opt.wall.median_ns > 0.0 {
            base.wall.median_ns / opt.wall.median_ns
        } else {
            0.0
        };
        outln!(
            console,
            "advisory wall clock: codec_encode {} vs baseline {} ({speedup:.2}x{})",
            fmt_ns(opt.wall.median_ns),
            fmt_ns(base.wall.median_ns),
            if speedup < 2.0 {
                " — below the 2x trajectory target, not gating"
            } else {
                ""
            }
        );
    } else {
        outln!(console, "advisory wall clock: skipped (no clock installed)");
    }
    Ok(Output {
        console,
        csv: None,
        json: None,
        files: Vec::new(),
    })
}

/// Pinpoints the first counter divergence for the smoke error message.
fn describe_ops_mismatch(blessed: &OpsReport, fresh: &OpsReport) -> String {
    if blessed.schema != fresh.schema {
        return format!("schema `{}` vs blessed `{}`", fresh.schema, blessed.schema);
    }
    if blessed.benches.len() != fresh.benches.len() {
        return format!(
            "{} benches vs blessed {}",
            fresh.benches.len(),
            blessed.benches.len()
        );
    }
    for (b, f) in blessed.benches.iter().zip(&fresh.benches) {
        if b.name != f.name {
            return format!("bench order: `{}` vs blessed `{}`", f.name, b.name);
        }
        if b.counters != f.counters {
            return format!(
                "bench `{}`: {:?} vs blessed {:?}",
                f.name, f.counters, b.counters
            );
        }
    }
    "formatting drift only (counters identical)".to_string()
}

fn all_figures_overrides(_cfg: &EvalConfig) -> Vec<(&'static str, String)> {
    // The full figure set wants the artifact, not tight statistics.
    vec![("samples", "3".to_string())]
}

pub(crate) static SPEC: ExperimentSpec = ExperimentSpec {
    name: "perf",
    artifact: "BENCH_8",
    summary: "hot-path microbenchmarks: exact work counters + wall-clock statistics",
    version: VERSION,
    labels: &[LABEL],
    axes: &[Axis {
        name: "samples",
        kind: AxisKind::U64,
        default: "10",
        help: "timed samples per benchmark (min 3; BALDUR_BENCH_SAMPLES overrides, 0 rejected)",
    }],
    flags: &[],
    modes: &[Mode {
        flag: "smoke",
        help: "gate exact work counters against results/golden/perf_ops.json (wall clock advisory)",
        run: smoke_hook,
    }],
    output_columns: &[
        "bench",
        "ops",
        "packets",
        "bytes",
        "median_ns",
        "min_ns",
        "mad_ns",
        "ops_per_sec",
    ],
    golden: None,
    csv_default: None,
    json_default: Some("BENCH_8.json"),
    gnuplot: None,
    all_figures: all_figures_overrides,
    run: run_hook,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_stats_reject_outliers() {
        let s = WallStats::from_samples(&[100.0, 102.0, 98.0, 101.0, 99.0, 10_000.0]);
        assert_eq!(s.samples, 6);
        assert_eq!(s.rejected, 1);
        assert!((s.median_ns - 100.0).abs() < 1.5, "{}", s.median_ns);
        assert!((s.min_ns - 98.0).abs() < 1e-9);
    }

    #[test]
    fn wall_stats_keep_everything_at_zero_mad() {
        let s = WallStats::from_samples(&[50.0, 50.0, 50.0, 50.0]);
        assert_eq!(s.rejected, 0);
        assert!((s.median_ns - 50.0).abs() < 1e-9);
        assert!((s.mad_ns - 0.0).abs() < 1e-9);
    }

    #[test]
    fn codec_counters_are_exact_and_baseline_identical() {
        let fast = codec_encode();
        let slow = codec_encode_baseline();
        assert_eq!(fast, slow);
        assert_eq!(fast.ops, (CODEC_BYTES * CODEC_PASSES) as u64);
        let fast = codec_decode();
        let slow = codec_decode_baseline();
        assert_eq!(fast, slow);
    }

    #[test]
    fn tl_counters_match_reference() {
        assert_eq!(tl_gate_loop(), tl_gate_loop_baseline());
    }

    #[test]
    fn sched_backends_count_identically() {
        let heap = sched_heap();
        let cal = sched_calendar();
        assert_eq!(heap, cal);
        assert_eq!(heap.ops, 200_000);
    }
}

//! Figure 10: Baldur cost per server node versus scale.

use serde::{Deserialize, Serialize};

use crate::cost::components::{FATTREE_2560_COST_PER_NODE, OCS_COST_PER_NODE};
use crate::error::BaldurError;
use crate::power::scaling::paper_scales;
use crate::registry::{json_of, no_overrides, outln, section, ExperimentSpec, Output, Params};
use crate::sweep::Sweep;

const LABEL: &str = "fig10";
// Starts at the sweep cache-schema baseline so historical keys stay
// valid; bump on payload-semantics changes.
const VERSION: u32 = 1;

pub(crate) static SPEC: ExperimentSpec = ExperimentSpec {
    name: "fig10",
    artifact: "Figure 10",
    summary: "cost per node versus scale, with component breakdowns",
    version: VERSION,
    labels: &[LABEL],
    axes: &[],
    flags: &[],
    modes: &[],
    output_columns: &[
        "scale",
        "nodes",
        "interposers",
        "fibers",
        "faus",
        "rfecs",
        "transceivers",
        "total",
    ],
    golden: Some("fig10.csv"),
    csv_default: None,
    json_default: None,
    gnuplot: None,
    all_figures: no_overrides,
    run: run_hook,
};

/// One Figure 10 cost row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Scale label.
    pub label: String,
    /// Nodes instantiated.
    pub nodes: u64,
    /// Cost breakdown, USD/node.
    pub breakdown: crate::cost::CostBreakdown,
}

/// The Figure 10 cost sweep.
pub fn figure10() -> Vec<Fig10Row> {
    paper_scales().iter().map(fig10_row).collect()
}

/// [`figure10`] on a caller-provided [`Sweep`] — one cached job per
/// scale.
pub fn figure10_on(sw: &Sweep) -> Vec<Fig10Row> {
    sw.map_versioned(LABEL, VERSION, paper_scales(), fig10_row)
}

fn fig10_row(item: &(u64, String)) -> Fig10Row {
    let (requested, label) = item;
    Fig10Row {
        label: label.clone(),
        nodes: requested.next_power_of_two(),
        breakdown: crate::cost::cost_per_node(*requested),
    }
}

fn run_hook(sw: &Sweep, _p: &Params) -> Result<Output, BaldurError> {
    let rows = figure10_on(sw);
    let mut out = String::new();
    section(&mut out, "Figure 10: cost per node (USD)");
    outln!(
        out,
        "{:>10} | {:>12} {:>8} {:>8} {:>8} {:>8} | {:>9} | dominant",
        "scale",
        "interposers",
        "fibers",
        "faus",
        "rfecs",
        "xcvrs",
        "total"
    );
    for r in &rows {
        let b = &r.breakdown;
        outln!(
            out,
            "{:>10} | {:>12.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0} | {:>9.0} | {}",
            r.label,
            b.interposers,
            b.fibers,
            b.faus,
            b.rfecs,
            b.transceivers,
            b.total(),
            b.dominant()
        );
    }
    outln!(
        out,
        "(anchors: paper Baldur ~523 USD/node at 1K-2K; fat-tree {FATTREE_2560_COST_PER_NODE:.0}; OCS {OCS_COST_PER_NODE:.0})"
    );
    Ok(Output {
        console: out,
        csv: Some(crate::csv::fig10(&rows)),
        json: Some(json_of("fig10", &rows)?),
        files: Vec::new(),
    })
}

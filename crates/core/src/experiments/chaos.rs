//! Chaos convergence: seeded random fault/repair schedules, the runtime
//! invariant oracle, and recovery-time guarantees.
//!
//! The default entry point sweeps many seeded [`FaultPlan::chaos`]
//! schedules (matched fail→repair pairs over links, switches, lasers, or
//! routers) across Baldur and an electrical baseline, with the release
//! build's invariant oracle on. Every run must end with zero oracle
//! violations, exact packet conservation, and a bounded time-to-recover
//! after each repair; any violation aborts with a greedily minimized
//! reproduction (drop fault events while the violation persists, print
//! the shrunk plan and seed).
//!
//! Two extra modes ride on the same spec:
//!
//! * `--smoke` — CI gate: few seeds on a small topology, asserting zero
//!   violations, byte-identical repeat runs, and the recovery-time
//!   bound; errs (exit 1) on any violation.
//! * `--shrink-demo` — drives the shrinker against an intentionally
//!   wedged run (a chaos schedule plus one unmatched kill-everything
//!   event under an aggressive stall deadline) and checks it minimizes
//!   to exactly the one guilty event.

use serde::{Deserialize, Serialize};

use super::EvalConfig;
use crate::error::BaldurError;
use crate::net::faults::{ChaosProfile, ChaosShape, FaultKind, FaultPlan};
use crate::net::metrics::LatencyReport;
use crate::net::runner::{run, NetworkKind, RunConfig, Workload};
use crate::net::traffic::Pattern;
use crate::registry::{
    fmt_ns, json_of, networks_axis, outln, section, Axis, AxisKind, ExperimentSpec, Mode, Output,
    Params,
};
use crate::sweep::Sweep;

const LABEL: &str = "chaos";
const VERSION: u32 = 1;

/// A repair the traffic recovered from must return goodput to half the
/// pre-fault rate within this bound (simulated time).
const RECOVERY_BOUND_NS: f64 = 2_000_000.0; // 2 ms

pub(crate) static SPEC: ExperimentSpec = ExperimentSpec {
    name: "chaos",
    artifact: "Sec. IV-E/F",
    summary: "seeded fault/repair chaos schedules with runtime oracle and recovery bounds",
    version: VERSION,
    labels: &[LABEL],
    axes: &[
        Axis {
            name: "seeds",
            kind: AxisKind::U64,
            default: "32",
            help: "number of seeded chaos schedules per network",
        },
        Axis {
            name: "pairs",
            kind: AxisKind::U64,
            default: "6",
            help: "fail/repair pairs per schedule",
        },
        Axis {
            name: "networks",
            kind: AxisKind::StrList,
            default: "baldur,fattree",
            help: "networks to torture (ideal is always skipped)",
        },
    ],
    flags: &[],
    modes: &[
        Mode {
            flag: "smoke",
            help: "CI gate: zero violations + recovery bound on few seeds",
            run: run_smoke,
        },
        Mode {
            flag: "shrink-demo",
            help: "minimize an intentionally failing fault plan",
            run: run_shrink_demo,
        },
    ],
    output_columns: &[
        "network",
        "seed",
        "events",
        "repairs",
        "violations",
        "recovered",
        "max_ttr_ns",
        "stranded",
        "flap_amp",
        "delivered",
        "abandoned",
        "generated",
    ],
    golden: Some("chaos.csv"),
    csv_default: Some("results/chaos.csv"),
    json_default: Some("results/chaos.json"),
    gnuplot: None,
    all_figures: crate::registry::no_overrides,
    run: run_sweep,
};

/// One chaos schedule's outcome on one network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosRow {
    /// Network name.
    pub network: String,
    /// The schedule's seed (also the run seed).
    pub seed: u64,
    /// Fault events in the schedule.
    pub events: usize,
    /// The measured report: oracle summary, per-repair recovery times,
    /// stranded count, and flap amplification ride on it.
    pub report: LatencyReport,
}

/// The fault surface a chaos schedule draws from, per network: the
/// staged fabric's dimensions for Baldur, a router-count prefix for the
/// electrical baselines (kills outside the real topology are ignored by
/// construction, so a conservative count stays safe).
fn shape_for(net: &NetworkKind, nodes: u32) -> ChaosShape {
    match net {
        NetworkKind::Baldur(bp) => {
            let tn = nodes.next_power_of_two().max(4);
            ChaosShape {
                stages: tn.trailing_zeros(),
                width: tn / 2,
                m: bp.multiplicity,
                nodes,
                routers: 0,
            }
        }
        _ => ChaosShape {
            stages: 0,
            width: 0,
            m: 0,
            nodes,
            routers: (nodes / 4).max(1),
        },
    }
}

/// Sizes the fail/repair window to the run: open-loop traffic at load
/// 0.5 streams for roughly `ppn * packet_time / load`, so faults start
/// after a warmup eighth and every repair lands by the half-way point,
/// leaving live traffic to measure recovery against.
fn profile_for(ppn: u32, pairs: u32) -> ChaosProfile {
    let duration_ps = u64::from(ppn) * 330_000;
    ChaosProfile {
        warmup_ps: duration_ps / 8,
        last_repair_ps: duration_ps / 2,
        pairs,
    }
}

fn chaos_run_config(cfg: &EvalConfig, net: &NetworkKind, seed: u64, pairs: u32) -> RunConfig {
    let shape = shape_for(net, cfg.nodes);
    let profile = profile_for(cfg.packets_per_node, pairs);
    let plan = FaultPlan::chaos(seed, &shape, &profile);
    RunConfig {
        seed,
        ..RunConfig::new(
            cfg.nodes,
            net.clone(),
            Workload::Synthetic {
                pattern: Pattern::UniformRandom,
                load: 0.5,
                packets_per_node: cfg.packets_per_node,
            },
        )
    }
    .with_faults(plan)
}

/// [`chaos_on`] over the spec's default lineup (Baldur plus the fat-tree
/// baseline) with a fresh sweep, for the golden suite and library callers
/// outside the registry.
pub fn chaos(cfg: &EvalConfig, seeds: u64, pairs: u32) -> Vec<ChaosRow> {
    let lineup: Vec<(String, NetworkKind)> = ["baldur", "fattree"]
        .iter()
        .filter_map(|n| NetworkKind::by_name(n, cfg.nodes).map(|net| (n.to_string(), net)))
        .collect();
    chaos_on(&cfg.sweep(), cfg, &lineup, seeds, pairs)
}

/// Runs `seeds` chaos schedules per (non-ideal) network through the
/// supervised sweep machinery.
pub fn chaos_on(
    sw: &Sweep,
    cfg: &EvalConfig,
    lineup: &[(String, NetworkKind)],
    seeds: u64,
    pairs: u32,
) -> Vec<ChaosRow> {
    let mut items: Vec<(String, u64, RunConfig)> = Vec::new();
    for (name, net) in lineup {
        if matches!(net, NetworkKind::Ideal) {
            continue;
        }
        for s in 0..seeds {
            let seed = cfg.seed.wrapping_add(s);
            let rc = chaos_run_config(cfg, net, seed, pairs);
            items.push((name.clone(), seed, rc));
        }
    }
    sw.map_versioned(LABEL, VERSION, items, |(name, seed, rc)| ChaosRow {
        network: name.clone(),
        seed: *seed,
        events: rc.faults.as_ref().map_or(0, |p| p.events.len()),
        report: run(rc),
    })
}

fn print_rows(out: &mut String, rows: &[ChaosRow]) {
    outln!(
        out,
        "{:>10} | {:>6} | {:>6} | {:>7} | {:>10} | {:>9} | {:>8} | {:>8}",
        "network",
        "seed",
        "events",
        "repairs",
        "violation",
        "recovered",
        "max ttr",
        "flap amp"
    );
    for r in rows {
        let recovered = r.report.recoveries.iter().filter(|x| x.recovered()).count();
        outln!(
            out,
            "{:>10} | {:>6} | {:>6} | {:>7} | {:>10} | {:>9} | {:>8} | {:>8.3}",
            r.network,
            r.seed,
            r.events,
            r.report.recoveries.len(),
            r.report.oracle.total(),
            recovered,
            r.report
                .max_recovery_ns()
                .map_or_else(|| "-".to_string(), fmt_ns),
            r.report.flap_amplification()
        );
    }
}

/// The convergence gate shared by the default run and the smoke: zero
/// oracle violations, exact conservation, and every recovered repair
/// inside the recovery-time bound. Returns human-readable complaints.
fn gate(rows: &[ChaosRow]) -> Vec<String> {
    let mut complaints = Vec::new();
    let mut any_recovered = false;
    for r in rows {
        if !r.report.oracle.is_clean() {
            complaints.push(format!(
                "{} seed {}: {} oracle violation(s), first: {}",
                r.network,
                r.seed,
                r.report.oracle.total(),
                r.report
                    .oracle
                    .reports
                    .first()
                    .map_or_else(|| "(suppressed)".to_string(), |v| v.to_string()),
            ));
        }
        if r.report.delivered + r.report.abandoned != r.report.generated {
            complaints.push(format!(
                "{} seed {}: conservation broken ({} + {} != {})",
                r.network, r.seed, r.report.delivered, r.report.abandoned, r.report.generated
            ));
        }
        for rec in &r.report.recoveries {
            if let Some(ttr_ns) = rec.time_to_recover_ns {
                any_recovered = true;
                if ttr_ns > RECOVERY_BOUND_NS {
                    complaints.push(format!(
                        "{} seed {}: repair at {} recovered in {} (> bound {})",
                        r.network,
                        r.seed,
                        fmt_ns(rec.repair_at_ns),
                        fmt_ns(ttr_ns),
                        fmt_ns(RECOVERY_BOUND_NS)
                    ));
                }
            }
        }
    }
    if !rows.is_empty() && !any_recovered {
        complaints.push("no repair event showed measurable recovery".to_string());
    }
    complaints
}

/// Re-runs one failing row's configuration while greedily dropping fault
/// events, returning the 1-minimal plan that still trips the oracle plus
/// a printable reproduction.
fn minimize_failure(cfg: &EvalConfig, row: &ChaosRow, net: &NetworkKind, pairs: u32) -> String {
    use crate::net::faults::shrink_plan;
    let rc = chaos_run_config(cfg, net, row.seed, pairs);
    let Some(plan) = rc.faults.clone() else {
        return "no plan to shrink".to_string();
    };
    let base = rc.clone();
    let shrunk = shrink_plan(&plan, |p| {
        let probe = base.clone().with_faults(p.clone());
        !run(&probe).oracle.is_clean()
    });
    format!(
        "minimized reproduction (seed {}): {} of {} events suffice: {:?}",
        row.seed,
        shrunk.events.len(),
        row.events,
        shrunk.events
    )
}

fn run_sweep(sw: &Sweep, p: &Params) -> Result<Output, BaldurError> {
    let cfg = p.cfg;
    let seeds = p.u64("seeds")?.max(1);
    let pairs = p.u64("pairs")?.max(1) as u32;
    let lineup = networks_axis(p, cfg.nodes)?;
    let mut out = String::new();
    section(
        &mut out,
        &format!(
            "Chaos convergence: {seeds} seeded fail/repair schedules x {} network(s) ({} nodes)",
            lineup.len(),
            cfg.nodes
        ),
    );
    let rows = chaos_on(sw, &cfg, &lineup, seeds, pairs);
    print_rows(&mut out, &rows);
    let complaints = gate(&rows);
    if let Some(first) = complaints.first() {
        let offender = rows.iter().find(|r| !r.report.oracle.is_clean());
        let repro = offender
            .and_then(|r| {
                lineup
                    .iter()
                    .find(|(n, _)| *n == r.network)
                    .map(|(_, net)| minimize_failure(&cfg, r, net, pairs))
            })
            .unwrap_or_default();
        return Err(BaldurError::Experiment {
            name: "chaos".to_string(),
            message: format!("{} complaint(s); first: {first}; {repro}", complaints.len()),
        });
    }
    outln!(
        out,
        "chaos gate OK: zero violations, conservation exact, recoveries within {}",
        fmt_ns(RECOVERY_BOUND_NS)
    );
    Ok(Output {
        console: out,
        csv: Some(crate::csv::chaos(&rows)),
        json: Some(json_of("chaos", &rows)?),
        files: Vec::new(),
    })
}

/// CI gate: few seeds, small topology, byte-identical repeat, zero
/// violations, bounded recovery.
fn run_smoke(sw: &Sweep, p: &Params) -> Result<Output, BaldurError> {
    let cfg = p.cfg;
    let small = EvalConfig {
        nodes: cfg.nodes.min(64),
        packets_per_node: cfg.packets_per_node.clamp(40, 60),
        ..cfg
    };
    let seeds = 6;
    let pairs = 4;
    let lineup = networks_axis(p, small.nodes)?;
    let mut out = String::new();
    section(
        &mut out,
        &format!(
            "Chaos smoke: {} nodes, {} pkts/node, {seeds} seeds from {}",
            small.nodes, small.packets_per_node, small.seed
        ),
    );
    let first = chaos_on(sw, &small, &lineup, seeds, pairs);
    let second = chaos_on(sw, &small, &lineup, seeds, pairs);
    let csv_a = crate::csv::chaos(&first);
    let csv_b = crate::csv::chaos(&second);
    print_rows(&mut out, &first);
    let mut complaints = gate(&first);
    if csv_a != csv_b {
        complaints.push("same-seed chaos runs are not byte-identical".to_string());
    }
    if let Some(first_complaint) = complaints.first() {
        let offender = first.iter().find(|r| !r.report.oracle.is_clean());
        let repro = offender
            .and_then(|r| {
                lineup
                    .iter()
                    .find(|(n, _)| *n == r.network)
                    .map(|(_, net)| minimize_failure(&small, r, net, pairs))
            })
            .unwrap_or_default();
        return Err(BaldurError::Experiment {
            name: "chaos".to_string(),
            message: format!(
                "{} complaint(s); first: {first_complaint}; {repro}",
                complaints.len()
            ),
        });
    }
    outln!(
        out,
        "chaos smoke OK: oracle quiet, runs byte-identical, recoveries within {}",
        fmt_ns(RECOVERY_BOUND_NS)
    );
    Ok(Output::console_only(out))
}

/// Demonstrates the minimizer: a benign chaos schedule plus one
/// unmatched kill-everything event, run with an unforgiving stall
/// deadline and an effectively infinite retry budget, livelocks — the
/// stuck-flow detector fires and the shrinker must strip every benign
/// pair, leaving exactly the guilty event.
fn run_shrink_demo(_sw: &Sweep, p: &Params) -> Result<Output, BaldurError> {
    use crate::net::baldur_net::simulate_chaos;
    use crate::net::config::{BaldurParams, LinkParams};
    use crate::net::driver::Driver;
    use crate::net::faults::shrink_plan;
    use crate::net::oracle::OracleConfig;

    let cfg = p.cfg;
    let nodes = 16u32;
    let ppn = 30u32;
    let params = BaldurParams {
        max_retries: 1_000_000, // never give up: a dead fabric livelocks
        ..BaldurParams::paper_for(u64::from(nodes))
    };
    let shape = ChaosShape {
        stages: 4,
        width: 8,
        m: params.multiplicity,
        nodes,
        routers: 0,
    };
    let profile = profile_for(ppn, 4);
    let guilty_at = profile.last_repair_ps + 1_000_000;
    let plan = FaultPlan::chaos(cfg.seed, &shape, &profile)
        .at(guilty_at, FaultKind::FailFraction { fraction: 1.0 });
    let total_events = plan.events.len();
    let ocfg = OracleConfig {
        stall_ps: 2_000_000, // 2 us of silence with work outstanding
        ..OracleConfig::default()
    };
    let fails = |pl: &FaultPlan| {
        let d = Driver::open_loop(
            nodes,
            Pattern::UniformRandom,
            0.5,
            ppn,
            &LinkParams::paper(),
            cfg.seed,
        );
        let r = simulate_chaos(
            nodes,
            params,
            LinkParams::paper(),
            d,
            cfg.seed,
            None,
            pl,
            ocfg,
        );
        !r.oracle.is_clean()
    };

    let mut out = String::new();
    section(
        &mut out,
        &format!("Shrink demo: {total_events} scheduled events, one of them fatal"),
    );
    if !fails(&plan) {
        return Err(BaldurError::Experiment {
            name: "chaos".to_string(),
            message: "the wedged fixture did not trip the oracle".to_string(),
        });
    }
    let shrunk = shrink_plan(&plan, fails);
    outln!(
        out,
        "seed {}: shrunk {} events -> {}: {:?}",
        cfg.seed,
        total_events,
        shrunk.events.len(),
        shrunk.events
    );
    let minimal = shrunk.events.len() == 1
        && matches!(
            shrunk.events.first().map(|e| e.kind),
            Some(FaultKind::FailFraction { .. })
        );
    if !minimal {
        return Err(BaldurError::Experiment {
            name: "chaos".to_string(),
            message: format!(
                "shrinker kept {} event(s) instead of isolating the kill-everything event: {:?}",
                shrunk.events.len(),
                shrunk.events
            ),
        });
    }
    outln!(out, "shrinker isolated the guilty event (1-minimal plan)");
    Ok(Output::console_only(out))
}

//! Fault injection and degradation curves.
//!
//! The default entry point sweeps the failed-element fraction (0–20%)
//! across Baldur and the electrical baselines — the kill sets nest, so
//! goodput degrades monotonically in the fraction. Two extra modes ride
//! on the same spec:
//!
//! * `--smoke` — CI gate: a small topology at 5% failures, run twice,
//!   asserting packet conservation (delivered + abandoned = generated)
//!   and byte-identical CSVs across the two runs; errs (exit 1) on any
//!   violation.
//! * `--diagnose` — the Sec. IV-F demo: one dead switch, path rotation
//!   routing around it, then deterministic test-mode probing to isolate
//!   it.

use serde::{Deserialize, Serialize};

use super::EvalConfig;
use crate::error::BaldurError;
use crate::net::metrics::LatencyReport;
use crate::net::runner::{run, NetworkKind, RunConfig, Workload};
use crate::net::traffic::Pattern;
use crate::registry::{
    fmt_ns, json_of, networks_axis, outln, section, Axis, AxisKind, ExperimentSpec, Mode, Output,
    Params,
};
use crate::sweep::Sweep;

const LABEL: &str = "faults";
// Starts at the sweep cache-schema baseline so historical keys stay
// valid; bump on payload-semantics changes.
const VERSION: u32 = 1;

pub(crate) static SPEC: ExperimentSpec = ExperimentSpec {
    name: "faults",
    artifact: "Sec. IV-F",
    summary: "failed-element degradation curves, fault smoke, and diagnosis demo",
    version: VERSION,
    labels: &[LABEL],
    axes: &[
        Axis {
            name: "fractions",
            kind: AxisKind::F64List,
            default: "0.0,0.025,0.05,0.10,0.15,0.20",
            help: "failed-element fractions to sweep",
        },
        Axis {
            name: "networks",
            kind: AxisKind::StrList,
            // The ideal network has no components to fail, so the
            // default lineup omits it (listing it is harmless: the
            // sweep skips it, matching the historical behavior).
            default: "baldur,electrical_mb,dragonfly,fattree",
            help: "networks to degrade (ideal is always skipped)",
        },
    ],
    flags: &[],
    modes: &[
        Mode {
            flag: "smoke",
            help: "CI gate: conservation + determinism at 5% failures",
            run: run_smoke,
        },
        Mode {
            flag: "diagnose",
            help: "dead-switch demo: degrade, route around, isolate",
            run: run_diagnose,
        },
    ],
    output_columns: &[
        "network",
        "fraction",
        "goodput",
        "avg_ns",
        "p99_ns",
        "delivered",
        "abandoned",
        "generated",
        "retransmissions",
    ],
    golden: Some("faults.csv"),
    csv_default: Some("results/faults.csv"),
    json_default: Some("results/faults.json"),
    gnuplot: None,
    all_figures: crate::registry::no_overrides,
    run: run_sweep,
};

/// One cell of the fault-degradation sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegradationRow {
    /// Network name.
    pub network: String,
    /// Fraction of switching elements failed at t = 0.
    pub fraction: f64,
    /// The measured report (per-epoch breakdowns included when the plan
    /// has events after t = 0).
    pub report: LatencyReport,
}

/// Sweeps the failed-element fraction across Baldur and the electrical
/// baselines (the ideal network has no components to fail) under
/// uniform-random traffic. Kill sets nest — a higher fraction fails a
/// strict superset of a lower one — so goodput degrades monotonically in
/// the fraction by construction, not by luck of the draw.
pub fn degradation(cfg: &EvalConfig, fractions: &[f64]) -> Vec<DegradationRow> {
    degradation_on(&cfg.sweep(), cfg, fractions)
}

/// [`degradation`] on a caller-provided [`Sweep`].
pub fn degradation_on(sw: &Sweep, cfg: &EvalConfig, fractions: &[f64]) -> Vec<DegradationRow> {
    degradation_lineup_on(sw, cfg, &NetworkKind::paper_lineup(cfg.nodes), fractions)
}

/// [`degradation`] on a caller-provided named lineup (the registry's
/// `networks` axis); the ideal network is skipped wherever it appears.
/// The paper lineup reproduces [`degradation_on`]'s items — and
/// therefore its cache keys — exactly.
pub fn degradation_lineup_on(
    sw: &Sweep,
    cfg: &EvalConfig,
    lineup: &[(String, NetworkKind)],
    fractions: &[f64],
) -> Vec<DegradationRow> {
    use crate::net::faults::FaultPlan;
    let mut items: Vec<(String, f64, RunConfig)> = Vec::new();
    for (name, net) in lineup {
        if matches!(net, NetworkKind::Ideal) {
            continue;
        }
        for &fraction in fractions {
            let rc = RunConfig {
                seed: cfg.seed,
                ..RunConfig::new(
                    cfg.nodes,
                    net.clone(),
                    Workload::Synthetic {
                        pattern: Pattern::UniformRandom,
                        load: 0.5,
                        packets_per_node: cfg.packets_per_node,
                    },
                )
            }
            .with_faults(FaultPlan::degradation(cfg.seed, fraction));
            items.push((name.clone(), fraction, rc));
        }
    }
    sw.map_versioned(LABEL, VERSION, items, |(name, fraction, rc)| {
        DegradationRow {
            network: name.clone(),
            fraction: *fraction,
            report: run(rc),
        }
    })
}

fn print_rows(out: &mut String, rows: &[DegradationRow]) {
    let mut networks: Vec<&str> = rows.iter().map(|r| r.network.as_str()).collect();
    networks.dedup();
    outln!(
        out,
        "{:>14} | {:>8} | {:>8} | {:>10} | {:>10} | {:>9} | {:>9}",
        "network",
        "fraction",
        "goodput",
        "avg",
        "p99",
        "abandoned",
        "retx"
    );
    for net in networks {
        for r in rows.iter().filter(|r| r.network == net) {
            outln!(
                out,
                "{:>14} | {:>8.3} | {:>7.2}% | {:>10} | {:>10} | {:>9} | {:>9}",
                r.network,
                r.fraction,
                r.report.delivery_ratio() * 100.0,
                fmt_ns(r.report.avg_ns),
                fmt_ns(r.report.p99_ns),
                r.report.abandoned,
                r.report.retransmissions
            );
        }
    }
}

fn run_sweep(sw: &Sweep, p: &Params) -> Result<Output, BaldurError> {
    let cfg = p.cfg;
    let fracs = p.f64_list("fractions")?;
    let lineup = networks_axis(p, cfg.nodes)?;
    let mut out = String::new();
    section(
        &mut out,
        &format!(
            "Degradation curves: failed-element fraction sweep ({} nodes, {} pkts/node)",
            cfg.nodes, cfg.packets_per_node
        ),
    );
    let rows = degradation_lineup_on(sw, &cfg, &lineup, &fracs);
    print_rows(&mut out, &rows);
    Ok(Output {
        console: out,
        csv: Some(crate::csv::faults(&rows)),
        json: Some(json_of("faults", &rows)?),
        files: Vec::new(),
    })
}

/// CI gate: small topology, 5% failures, fixed seed; conservation and
/// run-to-run determinism must hold exactly. Runs uncached twice on
/// purpose — a cache hit would turn the determinism check into a no-op.
fn run_smoke(_sw: &Sweep, p: &Params) -> Result<Output, BaldurError> {
    let cfg = p.cfg;
    let small = EvalConfig {
        nodes: cfg.nodes.min(64),
        packets_per_node: cfg.packets_per_node.min(40),
        ..cfg
    };
    let fracs = [0.0, 0.05];
    let mut out = String::new();
    section(
        &mut out,
        &format!(
            "Fault smoke: {} nodes, {} pkts/node, 5% failures, seed {}",
            small.nodes, small.packets_per_node, small.seed
        ),
    );
    let first = degradation(&small, &fracs);
    let second = degradation(&small, &fracs);
    let csv_a = crate::csv::faults(&first);
    let csv_b = crate::csv::faults(&second);
    let mut violations: Vec<String> = Vec::new();
    if csv_a != csv_b {
        violations.push("same-seed runs are not byte-identical".to_string());
    }
    for r in &first {
        let accounted = r.report.delivered + r.report.abandoned;
        if accounted != r.report.generated {
            violations.push(format!(
                "{} at fraction {}: delivered {} + abandoned {} != generated {}",
                r.network, r.fraction, r.report.delivered, r.report.abandoned, r.report.generated
            ));
        }
        if r.fraction <= 0.0 && r.report.abandoned != 0 {
            violations.push(format!(
                "{} abandoned {} packets with no faults injected",
                r.network, r.report.abandoned
            ));
        }
    }
    print_rows(&mut out, &first);
    if !violations.is_empty() {
        return Err(BaldurError::Experiment {
            name: "faults".to_string(),
            message: violations.join("; "),
        });
    }
    outln!(out, "fault smoke OK: conservation + determinism hold");
    Ok(Output::console_only(out))
}

/// The original Sec. IV-F demo: dead switch, rotation, diagnosis.
fn run_diagnose(_sw: &Sweep, p: &Params) -> Result<Output, BaldurError> {
    use crate::net::baldur_net::simulate_with_faults;
    use crate::net::config::{BaldurParams, LinkParams};
    use crate::net::diagnosis::locate_faulty_switch;
    use crate::net::driver::Driver;
    use crate::topo::multibutterfly::MultiButterfly;

    let cfg = p.cfg;
    let nodes = cfg.nodes.next_power_of_two();
    let stages = nodes.trailing_zeros();
    let fault = (stages / 2, nodes / 4); // somewhere mid-network
    let params = BaldurParams {
        path_rotation: true,
        ..BaldurParams::paper_for(u64::from(nodes))
    };

    let mut out = String::new();
    section(
        &mut out,
        &format!(
            "Fault tolerance: dead switch at stage {} index {} ({} nodes)",
            fault.0, fault.1, nodes
        ),
    );
    for (label, faults) in [("healthy", vec![]), ("faulty", vec![fault])] {
        let d = Driver::open_loop(
            nodes,
            Pattern::RandomPermutation,
            0.5,
            cfg.packets_per_node,
            &LinkParams::paper(),
            cfg.seed,
        );
        let r = simulate_with_faults(
            nodes,
            params,
            LinkParams::paper(),
            d,
            cfg.seed,
            None,
            &faults,
        );
        outln!(
            out,
            "{label:>8}: delivered {:>6.2}% | avg {:>10} | retransmissions {:>7} | drops {:>7}",
            r.delivery_ratio() * 100.0,
            fmt_ns(r.avg_ns),
            r.retransmissions,
            r.drop_attempts
        );
    }

    section(
        &mut out,
        "Diagnosis: isolating the dead switch with test-mode probes",
    );
    let topo = MultiButterfly::new(nodes, params.multiplicity, cfg.seed);
    let result = locate_faulty_switch(&topo, &|loc| loc == fault, cfg.seed, 100_000);
    match result.suspect {
        Some(loc) => outln!(
            out,
            "isolated switch (stage {}, index {}) after {} probes — {}",
            loc.0,
            loc.1,
            result.probes_used,
            if loc == fault { "CORRECT" } else { "WRONG" }
        ),
        None => outln!(
            out,
            "not isolated within budget ({} candidates left)",
            result.candidates_left
        ),
    }
    Ok(Output {
        console: out,
        csv: None,
        json: Some(json_of("faults", &result)?),
        files: Vec::new(),
    })
}

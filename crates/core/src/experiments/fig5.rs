//! Figure 5: the 2x2 switch waveform, reproduced at gate level.
//!
//! Prints an ASCII timing diagram and (with the `vcd` axis set to a
//! path) emits a VCD file for a waveform viewer.

use serde::{Deserialize, Serialize};

use crate::error::BaldurError;
use crate::registry::{
    json_of, outln, outp, section, Axis, AxisKind, ExperimentSpec, Output, Params,
};
use crate::sweep::Sweep;

pub(crate) static SPEC: ExperimentSpec = ExperimentSpec {
    name: "fig5",
    artifact: "Figure 5",
    summary: "gate-level 2x2 switch waveform (ASCII + VCD)",
    version: 1,
    labels: &[],
    axes: &[Axis {
        name: "vcd",
        kind: AxisKind::Str,
        default: "",
        help: "path to write a VCD waveform file (empty: skip)",
    }],
    flags: &[],
    modes: &[],
    output_columns: &[],
    golden: None,
    csv_default: None,
    json_default: None,
    gnuplot: None,
    all_figures: all_figures_overrides,
    run: run_hook,
};

// `all_figures` has always dropped a viewable waveform file alongside
// the JSON artifacts.
fn all_figures_overrides(_cfg: &super::EvalConfig) -> Vec<(&'static str, String)> {
    vec![("vcd", "fig5.vcd".to_string())]
}

/// The Figure 5 waveform reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Waveform {
    /// Full VCD document for a waveform viewer.
    pub vcd: String,
    /// ASCII rendering for terminals.
    pub ascii: String,
    /// Which output port carried the packet.
    pub output_port: usize,
}

/// Runs the gate-level 2x2 switch on one packet (routing bits `[0, 1]`)
/// and captures the Figure 5 signal set.
pub fn figure5() -> Fig5Waveform {
    use crate::phy::length_code::LengthCode;
    use crate::phy::packet_wave::assemble;
    use crate::tl::netlist::{CircuitSim, Netlist, RunOutcome};
    use crate::tl::switch::{build_switch, SwitchParams};

    let t = crate::phy::waveform::BIT_PERIOD_FS;
    let p = SwitchParams::paper();
    let code = LengthCode::paper();
    let mut n = Netlist::new();
    let sw = build_switch(&mut n, p);
    let mut sim = CircuitSim::new(n);
    let probes = [
        sw.inputs[0],
        sw.taps[0].envelope,
        sw.taps[0].route,
        sw.taps[0].valid,
        sw.taps[0].mask,
        sw.grants[0][0],
        sw.outputs[0],
        sw.outputs[1],
    ];
    for w in probes {
        sim.probe(w);
    }
    let pw = assemble(&code, &[false, true], b"FIG5", 10 * t);
    sim.drive(sw.inputs[0], &pw.wave);
    let outcome = sim.run(pw.end + 3_000_000);
    assert!(
        matches!(outcome, RunOutcome::Settled { .. }),
        "switch failed to settle"
    );
    let out0 = !sim.probed(sw.outputs[0]).is_dark();
    Fig5Waveform {
        vcd: crate::tl::vcd::to_vcd(&sim, "baldur_switch"),
        ascii: crate::tl::vcd::to_ascii(&sim, 0, pw.end + 200_000, t / 2),
        output_port: usize::from(!out0),
    }
}

fn run_hook(_sw: &Sweep, p: &Params) -> Result<Output, BaldurError> {
    let f = figure5();
    let mut out = String::new();
    section(
        &mut out,
        "Figure 5: switch simulation waveform (routing bit 0 -> output 0)",
    );
    outp!(out, "{}", f.ascii);
    outln!(out, "\npacket exited on output port {}", f.output_port);
    let files = match p.opt_str("vcd")? {
        Some(path) => vec![(path.to_string(), f.vcd.clone())],
        None => Vec::new(),
    };
    Ok(Output {
        console: out,
        csv: None,
        json: Some(json_of("fig5", &f.output_port)?),
        files,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_routes_bit0_to_port0() {
        let f = figure5();
        assert_eq!(f.output_port, 0);
        assert!(f.vcd.contains("$var wire 1"));
        assert!(f.ascii.contains('█'));
    }
}

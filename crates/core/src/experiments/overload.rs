//! Overload robustness: incast/hotcast storms at offered loads past
//! saturation, with the overload controls (bounded ingress queues,
//! source pacing, delivery deadlines) switched on and a graceful-
//! degradation gate over the result.
//!
//! The sweep offers {uniform, incast, hotcast} storms at 0.5x-4x the
//! line rate to Baldur and an electrical baseline. The gate demands
//! that accepted goodput degrades gracefully (the 4x point keeps at
//! least [`DEGRADATION_FLOOR`] of the sweep's peak for that network and
//! pattern), that the overload controls actually engage at the top load
//! (something is shed), that the starvation/occupancy oracle stays
//! quiet, and that every packet is accounted for exactly:
//! `generated == delivered + abandoned + expired + ingress_drops`.
//!
//! The `--smoke` mode is the CI gate: a small topology, the same
//! checks, plus a byte-identical repeat run.

use serde::{Deserialize, Serialize};

use super::EvalConfig;
use crate::error::BaldurError;
use crate::net::metrics::LatencyReport;
use crate::net::runner::{run, NetworkKind, RunConfig, Workload};
use crate::net::traffic::Pattern;
use crate::net::workloads::incast_fanin;
use crate::registry::{
    json_of, outln, section, Axis, AxisKind, ExperimentSpec, Mode, Output, Params,
};
use crate::sweep::Sweep;

const LABEL: &str = "overload";
const VERSION: u32 = 1;

/// Accepted goodput at the top offered load must stay at or above this
/// fraction of the sweep's peak goodput (per network x pattern) — the
/// graceful-degradation criterion.
const DEGRADATION_FLOOR: f64 = 0.9;

/// Per-source admission cap (outstanding packets for Baldur's NIC,
/// injection-queue depth for the electrical NIC). Bounds memory and
/// turns excess offered load into counted ingress drops; deliberately
/// small so a storm sheds at the edge instead of aging in a deep queue.
const INGRESS_CAP: u32 = 8;

/// Baldur source pacing window: first injections in flight awaiting
/// their first release. Keeps the retry machinery from amplifying a
/// storm into the fabric.
const PACING_WINDOW: u32 = 2;

/// Baldur delivery deadline: a packet older than this expires instead
/// of retrying. ~120x the 163.84 ns serialization time, so it never
/// fires below saturation and sheds only genuinely stale work.
const DEADLINE_PS: u64 = 20_000_000;

/// Backoff ceiling under overload: cap the binary-exponential timeout at
/// 2^3 doublings (8 us from the 1 us base). The paper-faithful default
/// of 2^8 (256 us) strands storm losers in backoff exile — their retry
/// timers outlive the deadline, so admitted work expires unserved. A
/// bounded ceiling keeps retries frequent enough to drain once the
/// storm passes.
const MAX_BACKOFF_EXP: u32 = 3;

/// Retry-timeout jitter under overload (percent of the backoff base).
/// Incast senders that collided at the same slot otherwise retry in
/// lockstep and collide again; seeded jitter desynchronizes them.
const RETRY_JITTER_PCT: u32 = 50;

pub(crate) static SPEC: ExperimentSpec = ExperimentSpec {
    name: "overload",
    artifact: "Sec. IV (overload)",
    summary: "incast/hotcast storms at 0.5x-4x load with admission control and a degradation gate",
    version: VERSION,
    labels: &[LABEL],
    axes: &[
        Axis {
            name: "loads",
            kind: AxisKind::F64List,
            default: "0.5,1,2,4",
            help: "offered loads relative to line rate (may exceed 1)",
        },
        Axis {
            name: "patterns",
            kind: AxisKind::StrList,
            default: "uniform,incast,hotcast",
            help: "storm patterns to offer",
        },
        Axis {
            name: "networks",
            kind: AxisKind::StrList,
            default: "baldur,fattree",
            help: "networks to storm (ideal is always skipped)",
        },
    ],
    flags: &[],
    modes: &[Mode {
        flag: "smoke",
        help: "CI gate: degradation floor + quiet oracle + byte-identical repeat",
        run: run_smoke,
    }],
    output_columns: &[
        "network",
        "pattern",
        "load",
        "generated",
        "delivered",
        "expired",
        "ingress_drops",
        "abandoned",
        "goodput_pkt_per_us",
        "flows",
        "jain",
        "min_delivered",
        "max_delivered",
        "p99_ns",
        "p999_ns",
        "violations",
    ],
    golden: Some("overload.csv"),
    csv_default: Some("results/overload.csv"),
    json_default: Some("results/overload.json"),
    gnuplot: None,
    all_figures: crate::registry::no_overrides,
    run: run_sweep,
};

/// One storm's outcome on one network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverloadRow {
    /// Network name.
    pub network: String,
    /// Storm pattern name.
    pub pattern: String,
    /// Offered load relative to line rate.
    pub load: f64,
    /// The measured report: shed counters, fairness distribution, and
    /// the oracle summary ride on it.
    pub report: LatencyReport,
}

impl OverloadRow {
    /// Accepted goodput in delivered packets per simulated microsecond
    /// (0 when nothing was delivered). Measured to the last delivery,
    /// not to the drain instant, so stale retry timers ticking after
    /// traffic finished don't dilute the rate.
    pub fn goodput_pkt_per_us(&self) -> f64 {
        if self.report.last_delivery_ns <= 0.0 {
            return 0.0;
        }
        self.report.delivered as f64 * 1e3 / self.report.last_delivery_ns
    }
}

/// Resolves a network by name with the overload controls switched on:
/// Baldur gets the bounded ingress queue, pacing window, and delivery
/// deadline; the electrical baselines get the bounded NIC injection
/// queue and the same delivery deadline (stale packets expire at the
/// NIC instead of being transmitted, so neither model hoards work past
/// its usefulness). `None` for unknown names and for `ideal` (nothing
/// to bound).
pub fn overload_network(name: &str, nodes: u32) -> Option<NetworkKind> {
    let net = NetworkKind::by_name(name, nodes)?;
    match net {
        NetworkKind::Baldur(mut bp) => {
            bp.ingress_cap = INGRESS_CAP;
            bp.pacing_window = PACING_WINDOW;
            bp.deadline_ps = DEADLINE_PS;
            bp.max_backoff_exp = MAX_BACKOFF_EXP;
            bp.retry_jitter_pct = RETRY_JITTER_PCT;
            Some(NetworkKind::Baldur(bp))
        }
        NetworkKind::ElectricalMultiButterfly {
            multiplicity,
            mut router,
        } => {
            router.nic_queue_cap = INGRESS_CAP;
            router.deadline_ps = DEADLINE_PS;
            Some(NetworkKind::ElectricalMultiButterfly {
                multiplicity,
                router,
            })
        }
        NetworkKind::Dragonfly { mut router } => {
            router.nic_queue_cap = INGRESS_CAP;
            router.deadline_ps = DEADLINE_PS;
            Some(NetworkKind::Dragonfly { router })
        }
        NetworkKind::DragonflyMinimal { mut router } => {
            router.nic_queue_cap = INGRESS_CAP;
            router.deadline_ps = DEADLINE_PS;
            Some(NetworkKind::DragonflyMinimal { router })
        }
        NetworkKind::FatTree { mut router } => {
            router.nic_queue_cap = INGRESS_CAP;
            router.deadline_ps = DEADLINE_PS;
            Some(NetworkKind::FatTree { router })
        }
        NetworkKind::Ideal => None,
    }
}

/// Resolves a storm pattern name (`uniform`, `incast`, `hotcast`),
/// sizing the incast fan-in to the node count.
pub fn storm_pattern(name: &str, nodes: u32) -> Option<Pattern> {
    match name {
        "uniform" => Some(Pattern::UniformRandom),
        "incast" => Some(Pattern::Incast {
            fanin: incast_fanin(nodes),
        }),
        "hotcast" => Some(Pattern::Hotcast),
        _ => None,
    }
}

/// [`overload_on`] over the spec's defaults with a fresh sweep, for the
/// golden suite and library callers outside the registry. `Err` only on
/// a non-positive load — the default network/pattern lineup always
/// resolves.
pub fn overload(cfg: &EvalConfig, loads: &[f64]) -> Result<Vec<OverloadRow>, BaldurError> {
    let networks: Vec<String> = ["baldur", "fattree"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let patterns: Vec<String> = ["uniform", "incast", "hotcast"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    overload_on(&cfg.sweep(), cfg, &networks, &patterns, loads)
}

/// Runs the full (network x pattern x load) storm grid through the
/// supervised sweep machinery. Errs on unknown network/pattern names so
/// the registry runner surfaces a usage error instead of panicking.
pub fn overload_on(
    sw: &Sweep,
    cfg: &EvalConfig,
    networks: &[String],
    patterns: &[String],
    loads: &[f64],
) -> Result<Vec<OverloadRow>, BaldurError> {
    let mut items: Vec<(String, String, f64, RunConfig)> = Vec::new();
    for name in networks {
        if name == "ideal" {
            continue;
        }
        let Some(net) = overload_network(name, cfg.nodes) else {
            return Err(BaldurError::InvalidParam {
                param: "networks".to_string(),
                message: format!("unknown or unboundable network `{name}`"),
            });
        };
        for pname in patterns {
            let Some(pattern) = storm_pattern(pname, cfg.nodes) else {
                return Err(BaldurError::InvalidParam {
                    param: "patterns".to_string(),
                    message: format!("unknown pattern `{pname}` (uniform, incast, hotcast)"),
                });
            };
            for &load in loads {
                if load <= 0.0 {
                    return Err(BaldurError::InvalidParam {
                        param: "loads".to_string(),
                        message: format!("offered load must be positive, got {load}"),
                    });
                }
                // Equal-duration storms: scale the per-sender packet
                // budget with the load so every point offers traffic
                // over (roughly) the same simulated window — a 4x burst
                // of fixed size would just finish 8x sooner than a 0.5x
                // one and make the goodput points incomparable.
                let ppn = ((f64::from(cfg.packets_per_node) * load).round() as u32).max(1);
                let rc = RunConfig {
                    seed: cfg.seed,
                    ..RunConfig::new(
                        cfg.nodes,
                        net.clone(),
                        Workload::Storm {
                            pattern,
                            load,
                            packets_per_node: ppn,
                        },
                    )
                };
                items.push((name.clone(), pname.clone(), load, rc));
            }
        }
    }
    Ok(
        sw.map_versioned(LABEL, VERSION, items, |(name, pname, load, rc)| {
            OverloadRow {
                network: name.clone(),
                pattern: pname.clone(),
                load: *load,
                report: run(rc),
            }
        }),
    )
}

fn print_rows(out: &mut String, rows: &[OverloadRow]) {
    outln!(
        out,
        "{:>10} | {:>8} | {:>4} | {:>9} | {:>9} | {:>7} | {:>7} | {:>11} | {:>6}",
        "network",
        "pattern",
        "load",
        "generated",
        "delivered",
        "expired",
        "ingress",
        "goodput/us",
        "jain"
    );
    for r in rows {
        outln!(
            out,
            "{:>10} | {:>8} | {:>4} | {:>9} | {:>9} | {:>7} | {:>7} | {:>11.3} | {:>6.3}",
            r.network,
            r.pattern,
            r.load,
            r.report.generated,
            r.report.delivered,
            r.report.expired,
            r.report.ingress_drops,
            r.goodput_pkt_per_us(),
            r.report.fairness.jain
        );
    }
}

/// The graceful-degradation gate shared by the default run and the
/// smoke. Returns human-readable complaints (empty = pass).
fn gate(rows: &[OverloadRow]) -> Vec<String> {
    let mut complaints = Vec::new();
    for r in rows {
        if !r.report.oracle.is_clean() {
            complaints.push(format!(
                "{}/{} load {}: {} oracle violation(s), first: {}",
                r.network,
                r.pattern,
                r.load,
                r.report.oracle.total(),
                r.report
                    .oracle
                    .reports
                    .first()
                    .map_or_else(|| "(suppressed)".to_string(), |v| v.to_string()),
            ));
        }
        let accounted =
            r.report.delivered + r.report.abandoned + r.report.expired + r.report.ingress_drops;
        if accounted != r.report.generated {
            complaints.push(format!(
                "{}/{} load {}: conservation broken ({accounted} != {})",
                r.network, r.pattern, r.load, r.report.generated
            ));
        }
    }
    // Per (network, pattern): accepted goodput at the top load must hold
    // the degradation floor against the sweep's peak, and the overload
    // controls must visibly engage there when it oversubscribes.
    let mut groups: Vec<(String, String)> = rows
        .iter()
        .map(|r| (r.network.clone(), r.pattern.clone()))
        .collect();
    groups.sort();
    groups.dedup();
    for (net, pat) in groups {
        let series: Vec<&OverloadRow> = rows
            .iter()
            .filter(|r| r.network == net && r.pattern == pat)
            .collect();
        let peak = series
            .iter()
            .map(|r| r.goodput_pkt_per_us())
            .fold(0.0f64, f64::max);
        let Some(top) = series
            .iter()
            .max_by(|a, b| a.load.total_cmp(&b.load))
            .copied()
        else {
            continue;
        };
        if peak > 0.0 && top.goodput_pkt_per_us() < DEGRADATION_FLOOR * peak {
            complaints.push(format!(
                "{net}/{pat}: goodput collapsed at load {} ({:.3}/us vs peak {:.3}/us)",
                top.load,
                top.goodput_pkt_per_us(),
                peak
            ));
        }
        let shed = top.report.expired + top.report.ingress_drops + top.report.abandoned;
        if top.load > 1.0 && shed == 0 {
            complaints.push(format!(
                "{net}/{pat}: load {} oversubscribes but nothing was shed — \
                 the overload controls never engaged",
                top.load
            ));
        }
    }
    complaints
}

fn run_sweep(sw: &Sweep, p: &Params) -> Result<Output, BaldurError> {
    let cfg = p.cfg;
    let loads = p.f64_list("loads")?;
    let patterns = p.str_list("patterns")?;
    let networks = p.str_list("networks")?;
    let mut out = String::new();
    section(
        &mut out,
        &format!(
            "Overload storms: {} load(s) x {} pattern(s) x {} network(s) ({} nodes)",
            loads.len(),
            patterns.len(),
            networks.len(),
            cfg.nodes
        ),
    );
    let rows = overload_on(sw, &cfg, &networks, &patterns, &loads)?;
    print_rows(&mut out, &rows);
    let complaints = gate(&rows);
    if let Some(first) = complaints.first() {
        return Err(BaldurError::Experiment {
            name: "overload".to_string(),
            message: format!("{} complaint(s); first: {first}", complaints.len()),
        });
    }
    outln!(
        out,
        "overload gate OK: goodput holds {:.0}% of peak at the top load, oracle quiet, \
         conservation exact",
        DEGRADATION_FLOOR * 100.0
    );
    Ok(Output {
        console: out,
        csv: Some(crate::csv::overload(&rows)),
        json: Some(json_of("overload", &rows)?),
        files: Vec::new(),
    })
}

/// CI gate: small topology, three loads bracketing saturation, the full
/// degradation gate, and a byte-identical repeat run.
fn run_smoke(sw: &Sweep, p: &Params) -> Result<Output, BaldurError> {
    let cfg = p.cfg;
    let small = EvalConfig {
        nodes: cfg.nodes.min(64),
        packets_per_node: cfg.packets_per_node.clamp(40, 60),
        ..cfg
    };
    let loads = [0.5, 1.0, 4.0];
    let patterns = p.str_list("patterns")?;
    let networks = p.str_list("networks")?;
    let mut out = String::new();
    section(
        &mut out,
        &format!(
            "Overload smoke: {} nodes, {} pkts/node, loads {:?}",
            small.nodes, small.packets_per_node, loads
        ),
    );
    let first = overload_on(sw, &small, &networks, &patterns, &loads)?;
    let second = overload_on(sw, &small, &networks, &patterns, &loads)?;
    let csv_a = crate::csv::overload(&first);
    let csv_b = crate::csv::overload(&second);
    print_rows(&mut out, &first);
    let mut complaints = gate(&first);
    if csv_a != csv_b {
        complaints.push("same-seed overload runs are not byte-identical".to_string());
    }
    if let Some(first_complaint) = complaints.first() {
        return Err(BaldurError::Experiment {
            name: "overload".to_string(),
            message: format!(
                "{} complaint(s); first: {first_complaint}",
                complaints.len()
            ),
        });
    }
    outln!(
        out,
        "overload smoke OK: degradation floor held, oracle quiet, runs byte-identical"
    );
    Ok(Output::console_only(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_cfg() -> EvalConfig {
        EvalConfig {
            nodes: 64,
            packets_per_node: 48,
            ..EvalConfig::tiny()
        }
    }

    /// The shipped overload profile survives its own gate on the smoke
    /// grid: goodput at 4x holds the degradation floor, the oracle stays
    /// quiet, conservation is exact, and the controls visibly shed.
    #[test]
    fn smoke_grid_passes_gate() {
        let rows = overload(&grid_cfg(), &[0.5, 1.0, 4.0]).expect("default lineup resolves");
        assert_eq!(rows.len(), 18, "2 networks x 3 patterns x 3 loads");
        let complaints = gate(&rows);
        assert!(complaints.is_empty(), "gate complaints: {complaints:?}");
        for r in &rows {
            assert!(
                r.report.delivered > 0,
                "{}/{} delivered nothing",
                r.network,
                r.pattern
            );
        }
    }

    #[test]
    fn unknown_network_is_a_usage_error() {
        let cfg = grid_cfg();
        let err = overload_on(
            &cfg.sweep(),
            &cfg,
            &["warpdrive".to_string()],
            &["uniform".to_string()],
            &[1.0],
        )
        .unwrap_err();
        assert!(matches!(err, BaldurError::InvalidParam { ref param, .. } if param == "networks"));
    }

    #[test]
    fn unknown_pattern_is_a_usage_error() {
        let cfg = grid_cfg();
        let err = overload_on(
            &cfg.sweep(),
            &cfg,
            &["baldur".to_string()],
            &["omnicast".to_string()],
            &[1.0],
        )
        .unwrap_err();
        assert!(matches!(err, BaldurError::InvalidParam { ref param, .. } if param == "patterns"));
    }

    #[test]
    fn non_positive_load_is_a_usage_error() {
        let cfg = grid_cfg();
        for bad in [0.0, -1.0] {
            let err = overload_on(
                &cfg.sweep(),
                &cfg,
                &["baldur".to_string()],
                &["uniform".to_string()],
                &[bad],
            )
            .unwrap_err();
            assert!(matches!(err, BaldurError::InvalidParam { ref param, .. } if param == "loads"));
        }
    }

    /// `ideal` has no queues to bound; the resolver refuses it rather
    /// than silently running an unbounded control experiment.
    #[test]
    fn ideal_network_cannot_be_bounded() {
        assert!(overload_network("ideal", 64).is_none());
        assert!(overload_network("baldur", 64).is_some());
        assert!(overload_network("fattree", 64).is_some());
    }
}

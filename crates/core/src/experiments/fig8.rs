//! Figure 8: power per server node versus network scale.

use crate::error::BaldurError;
use crate::power::networks::NetworkPower;
use crate::power::scaling::{paper_scales, scaling_sweep, ScalePoint};
use crate::registry::{json_of, no_overrides, outln, section, ExperimentSpec, Output, Params};
use crate::sweep::Sweep;

const LABEL: &str = "fig8";
// Starts at the sweep cache-schema baseline so historical keys stay
// valid; bump on payload-semantics changes.
const VERSION: u32 = 1;

pub(crate) static SPEC: ExperimentSpec = ExperimentSpec {
    name: "fig8",
    artifact: "Figure 8",
    summary: "power per node versus network scale, with component breakdowns",
    version: VERSION,
    labels: &[LABEL],
    axes: &[],
    flags: &[],
    modes: &[],
    output_columns: &[
        "scale",
        "network",
        "nodes",
        "transceivers_w",
        "serdes_w",
        "buffers_w",
        "switching_w",
        "total_w",
    ],
    golden: Some("fig8.csv"),
    csv_default: None,
    json_default: None,
    gnuplot: Some(("fig8.gp", FIG8_GP)),
    all_figures: no_overrides,
    run: run_hook,
};

const FIG8_GP: &str = r#"set datafile separator ','
set logscale y
set ylabel 'power per node (W)'
set style data histogram
set style fill solid
set title 'Figure 8: power per node vs scale'
plot for [net in "baldur electrical_mb dragonfly fattree"] \
  '< grep ",'.net.'," fig8.csv' using 8:xtic(1) title net
"#;

/// The Figure 8 power sweep at the paper's four scales.
pub fn figure8() -> Vec<ScalePoint> {
    scaling_sweep(&paper_scales())
}

/// [`figure8`] on a caller-provided [`Sweep`] — one cached job per scale.
pub fn figure8_on(sw: &Sweep) -> Vec<ScalePoint> {
    sw.map_versioned(LABEL, VERSION, paper_scales(), |point| match scaling_sweep(
        std::slice::from_ref(point),
    )
    .pop()
    {
        Some(row) => row,
        None => unreachable!("scaling_sweep returns one point per scale"),
    })
}

fn run_hook(sw: &Sweep, _p: &Params) -> Result<Output, BaldurError> {
    let sweep = figure8_on(sw);
    let mut out = String::new();
    section(&mut out, "Figure 8: power per node (W)");
    outln!(
        out,
        "{:>10} | {:>10} {:>14} {:>10} {:>10} | min..max improvement",
        "scale",
        "baldur",
        "electrical_mb",
        "dragonfly",
        "fattree"
    );
    for p in &sweep {
        let b = p.total_w(NetworkPower::Baldur);
        let mb = p.total_w(NetworkPower::ElectricalMultiButterfly);
        let df = p.total_w(NetworkPower::Dragonfly);
        let ft = p.total_w(NetworkPower::FatTree);
        let imps = [mb / b, df / b, ft / b];
        let lo = imps.iter().cloned().fold(f64::MAX, f64::min);
        let hi = imps.iter().cloned().fold(0.0f64, f64::max);
        outln!(
            out,
            "{:>10} | {b:>10.2} {mb:>14.1} {df:>10.1} {ft:>10.1} | {lo:.1}x .. {hi:.1}x",
            p.label
        );
    }
    outln!(out, "(paper: 3.2x-26.4x at 1K-2K, 14.6x-31.0x at 1M-1.4M)");
    if !sweep.is_empty() {
        section(&mut out, "Component breakdown at 1K-2K and 1M-1.4M");
        for idx in [0, sweep.len() - 1] {
            let p = &sweep[idx];
            outln!(out, "-- {}", p.label);
            for (n, size, b) in &p.entries {
                outln!(
                    out,
                    "{:>14} ({:>9} nodes): xcvr {:>6.2} serdes {:>6.2} buf {:>7.2} switch {:>8.2} = {:>8.2} W",
                    n.name(), size, b.transceivers_w, b.serdes_w, b.buffers_w, b.switching_w,
                    b.total_w()
                );
            }
        }
    }
    Ok(Output {
        console: out,
        csv: Some(crate::csv::fig8(&sweep)),
        json: Some(json_of("fig8", &sweep)?),
        files: Vec::new(),
    })
}

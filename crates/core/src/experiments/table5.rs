//! Table V: gates, latency, and drop rate versus path multiplicity.

use serde::{Deserialize, Serialize};

use super::EvalConfig;
use crate::error::BaldurError;
use crate::net::config::BaldurParams;
use crate::net::runner::{run, NetworkKind, RunConfig, Workload};
use crate::net::traffic::Pattern;
use crate::registry::{json_of, no_overrides, outln, section, ExperimentSpec, Output, Params};
use crate::sweep::Sweep;
use crate::tl::gate_count::{SwitchDesign, TABLE_V_DROP_PCT};

const LABEL: &str = "table_v";
// Starts at the sweep cache-schema baseline so the keys this experiment
// has always written stay valid; bump on payload-semantics changes to
// invalidate exactly this experiment's cache entries.
const VERSION: u32 = 1;

pub(crate) static SPEC: ExperimentSpec = ExperimentSpec {
    name: "table5",
    artifact: "Table V",
    summary: "switch design cost and drop rate versus path multiplicity",
    version: VERSION,
    labels: &[LABEL],
    axes: &[],
    flags: &[],
    modes: &[],
    output_columns: &[
        "multiplicity",
        "gates",
        "latency_ns",
        "paper_drop_pct",
        "measured_drop_pct",
    ],
    golden: Some("table5.csv"),
    csv_default: None,
    json_default: None,
    gnuplot: None,
    all_figures: no_overrides,
    run: run_hook,
};

/// One row of Table V.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableVRow {
    /// Path multiplicity.
    pub multiplicity: u32,
    /// TL gates per switch (paper netlist values).
    pub gates: u32,
    /// Switch latency, ns.
    pub latency_ns: f64,
    /// Paper's drop rate (%) — transpose, 0.7 load, 1,024 nodes.
    pub paper_drop_pct: f64,
    /// Our simulator's drop rate (%) at the configured scale.
    pub measured_drop_pct: f64,
}

/// Regenerates Table V: design cost and drop rate versus multiplicity.
pub fn table_v(cfg: &EvalConfig) -> Vec<TableVRow> {
    table_v_on(&cfg.sweep(), cfg)
}

/// [`table_v`] on a caller-provided [`Sweep`] (shared thread pool, run
/// cache, per-sweep counters).
pub fn table_v_on(sw: &Sweep, cfg: &EvalConfig) -> Vec<TableVRow> {
    let items: Vec<(u32, RunConfig)> = (1..=5)
        .map(|m| {
            let design = SwitchDesign::new(m);
            let mut params = BaldurParams::paper_for(u64::from(cfg.nodes));
            params.multiplicity = m;
            params.switch_latency_ps = (design.latency_ns() * 1e3) as u64;
            let rc = RunConfig {
                seed: cfg.seed,
                ..RunConfig::new(
                    cfg.nodes,
                    NetworkKind::Baldur(params),
                    Workload::Synthetic {
                        pattern: Pattern::Transpose,
                        load: 0.7,
                        packets_per_node: cfg.packets_per_node,
                    },
                )
            };
            (m, rc)
        })
        .collect();
    sw.map_versioned(LABEL, VERSION, items, |(m, rc)| {
        let design = SwitchDesign::new(*m);
        let r = run(rc);
        TableVRow {
            multiplicity: *m,
            gates: design.gates(),
            latency_ns: design.latency_ns(),
            paper_drop_pct: TABLE_V_DROP_PCT[(*m - 1) as usize],
            measured_drop_pct: r.drop_rate * 100.0,
        }
    })
}

fn run_hook(sw: &Sweep, p: &Params) -> Result<Output, BaldurError> {
    let cfg = p.cfg;
    let rows = table_v_on(sw, &cfg);
    let mut out = String::new();
    section(
        &mut out,
        &format!(
            "Table V (transpose @ 0.7 load, {} nodes, {} pkts/node)",
            cfg.nodes, cfg.packets_per_node
        ),
    );
    outln!(
        out,
        "multiplicity | gates | latency (ns) | drop % (paper @1K) | drop % (measured)"
    );
    for r in &rows {
        outln!(
            out,
            "{:>12} | {:>5} | {:>12.2} | {:>18.2} | {:>17.3}",
            r.multiplicity,
            r.gates,
            r.latency_ns,
            r.paper_drop_pct,
            r.measured_drop_pct
        );
    }
    Ok(Output {
        console: out,
        csv: Some(crate::csv::table5(&rows)),
        json: Some(json_of("table5", &rows)?),
        files: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_shape_holds_at_tiny_scale() {
        let rows = table_v(&EvalConfig::tiny());
        assert_eq!(rows.len(), 5);
        // Drop rate falls monotonically with multiplicity, like the paper.
        for w in rows.windows(2) {
            assert!(
                w[1].measured_drop_pct <= w[0].measured_drop_pct + 1e-9,
                "{w:?}"
            );
        }
        assert!(rows[0].measured_drop_pct > rows[4].measured_drop_pct);
        assert_eq!(rows[3].gates, 1_112);
    }
}

//! Sec. IV-E: retransmission-buffer sizing at 0.7 load.

use super::EvalConfig;
use crate::error::BaldurError;
use crate::net::config::BaldurParams;
use crate::net::runner::{run, NetworkKind, RunConfig, Workload};
use crate::net::traffic::Pattern;
use crate::registry::{json_of, no_overrides, outln, section, ExperimentSpec, Output, Params};
use crate::sweep::Sweep;

const LABEL: &str = "buffer_sizing";
// Starts at the sweep cache-schema baseline so historical keys stay
// valid; bump on payload-semantics changes.
const VERSION: u32 = 1;

pub(crate) static SPEC: ExperimentSpec = ExperimentSpec {
    name: "buffers",
    artifact: "Sec. IV-E",
    summary: "retransmission-buffer high-water mark across synthetic patterns",
    version: VERSION,
    labels: &[LABEL],
    axes: &[],
    flags: &[],
    modes: &[],
    output_columns: &[],
    golden: None,
    csv_default: None,
    json_default: None,
    gnuplot: None,
    all_figures: no_overrides,
    run: run_hook,
};

/// The Sec. IV-E retransmission-buffer sizing study: the high-water
/// buffer occupancy across the synthetic patterns at 0.7 load.
pub fn buffer_sizing(cfg: &EvalConfig) -> Vec<(String, u64)> {
    buffer_sizing_on(&cfg.sweep(), cfg)
}

/// [`buffer_sizing`] on a caller-provided [`Sweep`].
pub fn buffer_sizing_on(sw: &Sweep, cfg: &EvalConfig) -> Vec<(String, u64)> {
    let patterns = [
        Pattern::RandomPermutation,
        Pattern::Transpose,
        Pattern::Bisection,
        Pattern::GroupPermutation,
        Pattern::Hotspot,
    ];
    let items: Vec<(String, RunConfig)> = patterns
        .into_iter()
        .map(|pattern| {
            let rc = RunConfig {
                seed: cfg.seed,
                ..RunConfig::new(
                    cfg.nodes,
                    NetworkKind::Baldur(BaldurParams::paper_for(u64::from(cfg.nodes))),
                    Workload::Synthetic {
                        pattern,
                        load: 0.7,
                        packets_per_node: cfg.packets_per_node,
                    },
                )
            };
            (pattern.name().to_string(), rc)
        })
        .collect();
    sw.map_versioned(LABEL, VERSION, items, |(name, rc)| {
        let r = run(rc);
        (name.clone(), r.max_retx_buffer_bytes)
    })
}

fn run_hook(sw: &Sweep, p: &Params) -> Result<Output, BaldurError> {
    let cfg = p.cfg;
    let rows = buffer_sizing_on(sw, &cfg);
    let mut out = String::new();
    section(
        &mut out,
        &format!(
            "Retransmission-buffer high-water mark ({} nodes, load 0.7)",
            cfg.nodes
        ),
    );
    for (pattern, bytes) in &rows {
        outln!(
            out,
            "{pattern:>20}: {:>9} bytes ({:.1} KB)",
            bytes,
            *bytes as f64 / 1024.0
        );
    }
    outln!(out, "(paper: 536 KB sufficient; 1 MB provisioned)");
    Ok(Output {
        console: out,
        csv: None,
        json: Some(json_of("buffers", &rows)?),
        files: Vec::new(),
    })
}

//! Error taxonomy for the supervised sweep runner.
//!
//! The harness treats worker failure the way Baldur's recovery protocol
//! treats packet loss: an expected input, not a process-fatal event. A
//! job that panics, blows its watchdog deadline, or is cancelled by the
//! failure budget becomes a structured [`JobError`] slot in the sweep's
//! submission-ordered results; library code that needs *all* results
//! returns a [`BaldurError`] instead of calling `expect`/`panic!`, so the
//! bench binaries can render one consistent failure report and choose
//! their own exit code.

use std::fmt;

/// Why a sweep job failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobErrorKind {
    /// The job panicked; [`JobError::payload`] carries the panic message.
    Panicked,
    /// Every attempt exceeded the watchdog deadline; the job was
    /// quarantined after its retry budget ran out.
    TimedOut,
    /// The job never ran: the sweep cancelled its queue after the
    /// failure budget was exhausted.
    Skipped,
}

impl JobErrorKind {
    /// Stable lower-snake name, used in journal records and status tables.
    pub fn as_str(self) -> &'static str {
        match self {
            JobErrorKind::Panicked => "panicked",
            JobErrorKind::TimedOut => "timed_out",
            JobErrorKind::Skipped => "skipped",
        }
    }
}

impl fmt::Display for JobErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One failed job slot in a sweep's submission-ordered results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// What went wrong.
    pub kind: JobErrorKind,
    /// Panic message, deadline description, or cancellation note.
    pub payload: String,
    /// Attempts made before giving up (0 for jobs that never ran).
    pub attempts: u32,
}

impl JobError {
    /// A [`JobErrorKind::Skipped`] error for a job cancelled before it ran.
    pub fn skipped() -> JobError {
        JobError {
            kind: JobErrorKind::Skipped,
            payload: "cancelled: sweep failure budget exhausted".to_string(),
            attempts: 0,
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} attempt{}: {}",
            self.kind,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.payload
        )
    }
}

impl std::error::Error for JobError {}

/// Library-side harness failures, replacing `expect`/`panic!` on the job
/// path so callers decide how (and whether) to die.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaldurError {
    /// A sweep job failed; `index` is its submission position.
    Job {
        /// The sweep label the job belonged to.
        label: String,
        /// Submission index of the failed job within the sweep.
        index: usize,
        /// The underlying job failure.
        error: JobError,
    },
    /// An expected result row is missing (e.g. a normalization baseline
    /// vanished because the job that would have produced it failed).
    MissingResult {
        /// The sweep or experiment the row was expected from.
        label: String,
        /// What was missing.
        what: String,
    },
    /// A registry parameter override failed validation (unknown axis,
    /// unparsable value, unknown network name). The registry runner maps
    /// this onto the usage-error path (exit 2) rather than the
    /// sweep-failure path (exit 1).
    InvalidParam {
        /// The axis or flag that failed.
        param: String,
        /// Why it was rejected.
        message: String,
    },
    /// An experiment-level failure outside any single sweep job: a
    /// violated self-check (the fault smoke's conservation/determinism
    /// assertions) or a rendering/serialization fault.
    Experiment {
        /// The registry spec name.
        name: String,
        /// What went wrong.
        message: String,
    },
    /// The runtime invariant oracle fired during a run: the structured
    /// report carries the violation kind, sim time, fault-epoch index,
    /// and a window of recent events; `context` names the run (network,
    /// seed, plan) so the failure is reproducible.
    Oracle {
        /// Which run tripped the oracle (network, seed, plan summary).
        context: String,
        /// The first structured violation report from that run.
        report: crate::net::oracle::OracleReport,
    },
}

impl fmt::Display for BaldurError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaldurError::Job {
                label,
                index,
                error,
            } => write!(f, "sweep '{label}': job {index} {error}"),
            BaldurError::MissingResult { label, what } => {
                write!(f, "sweep '{label}': missing result: {what}")
            }
            BaldurError::InvalidParam { param, message } => {
                write!(f, "parameter '{param}': {message}")
            }
            BaldurError::Experiment { name, message } => {
                write!(f, "experiment '{name}': {message}")
            }
            BaldurError::Oracle { context, report } => {
                write!(f, "oracle violation in {context}: {report}")
            }
        }
    }
}

impl std::error::Error for BaldurError {}

/// Collapses a submission-ordered slot vector into `Ok(results)` or the
/// first failure, for experiments whose output is meaningless unless
/// every job completed (ablation pairs, aggregate reliability counts).
pub fn all_ok<R>(label: &str, slots: Vec<Result<R, JobError>>) -> Result<Vec<R>, BaldurError> {
    let mut out = Vec::with_capacity(slots.len());
    for (index, slot) in slots.into_iter().enumerate() {
        match slot {
            Ok(r) => out.push(r),
            Err(error) => {
                return Err(BaldurError::Job {
                    label: label.to_string(),
                    index,
                    error,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_reads_like_a_report_line() {
        let e = JobError {
            kind: JobErrorKind::Panicked,
            payload: "index out of bounds".to_string(),
            attempts: 1,
        };
        assert_eq!(
            e.to_string(),
            "panicked after 1 attempt: index out of bounds"
        );
        let b = BaldurError::Job {
            label: "fig6".to_string(),
            index: 3,
            error: e,
        };
        assert_eq!(
            b.to_string(),
            "sweep 'fig6': job 3 panicked after 1 attempt: index out of bounds"
        );
    }

    #[test]
    fn all_ok_surfaces_first_failure_with_its_index() {
        let slots: Vec<Result<u32, JobError>> = vec![Ok(1), Err(JobError::skipped()), Ok(3)];
        match all_ok("demo", slots) {
            Err(BaldurError::Job {
                label,
                index,
                error,
            }) => {
                assert_eq!((label.as_str(), index), ("demo", 1));
                assert_eq!(error.kind, JobErrorKind::Skipped);
            }
            other => panic!("expected Job error, got {other:?}"),
        }
        let all: Vec<Result<u32, JobError>> = vec![Ok(1), Ok(2)];
        assert_eq!(all_ok("demo", all).expect("all ok"), vec![1, 2]);
    }
}

//! CSV renderings of experiment results, for plotting (gnuplot, pandas).
//!
//! Every harness binary accepts `--csv PATH` and writes the corresponding
//! table here. Columns are stable and documented per function.

use std::fmt::Write as _;

use crate::experiments::{
    ChaosRow, DegradationRow, Fig10Row, Fig6Row, Fig7Row, OverloadRow, SaturationRow, ScalingRow,
    TableVRow,
};
use crate::power::scaling::ScalePoint;

/// `pattern,network,load,avg_ns,p99_ns,drop_rate,delivered,generated`.
pub fn fig6(rows: &[Fig6Row]) -> String {
    let mut out =
        String::from("pattern,network,load,avg_ns,p99_ns,drop_rate,delivered,generated\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            r.pattern,
            r.network,
            r.load,
            r.report.avg_ns,
            r.report.p99_ns,
            r.report.drop_rate,
            r.report.delivered,
            r.report.generated
        );
    }
    out
}

/// `workload,network,avg_ns,p99_ns,normalized_avg,normalized_p99`.
pub fn fig7(rows: &[Fig7Row]) -> String {
    let normalized = crate::experiments::normalize_fig7(rows);
    let mut out = String::from("workload,network,avg_ns,p99_ns,normalized_avg,normalized_p99\n");
    for (r, (_, _, na, np)) in rows.iter().zip(normalized.iter()) {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            r.workload, r.network, r.report.avg_ns, r.report.p99_ns, na, np
        );
    }
    out
}

/// `scale,network,nodes,transceivers_w,serdes_w,buffers_w,switching_w,total_w`.
pub fn fig8(sweep: &[ScalePoint]) -> String {
    let mut out =
        String::from("scale,network,nodes,transceivers_w,serdes_w,buffers_w,switching_w,total_w\n");
    for p in sweep {
        for (n, size, b) in &p.entries {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{}",
                p.label,
                n.name(),
                size,
                b.transceivers_w,
                b.serdes_w,
                b.buffers_w,
                b.switching_w,
                b.total_w()
            );
        }
    }
    out
}

/// `scale,nodes,interposers,fibers,faus,rfecs,transceivers,total`.
pub fn fig10(rows: &[Fig10Row]) -> String {
    let mut out = String::from("scale,nodes,interposers,fibers,faus,rfecs,transceivers,total\n");
    for r in rows {
        let b = &r.breakdown;
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            r.label,
            r.nodes,
            b.interposers,
            b.fibers,
            b.faus,
            b.rfecs,
            b.transceivers,
            b.total()
        );
    }
    out
}

/// `multiplicity,gates,latency_ns,paper_drop_pct,measured_drop_pct`.
pub fn table5(rows: &[TableVRow]) -> String {
    let mut out = String::from("multiplicity,gates,latency_ns,paper_drop_pct,measured_drop_pct\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            r.multiplicity, r.gates, r.latency_ns, r.paper_drop_pct, r.measured_drop_pct
        );
    }
    out
}

/// `network,offered,accepted,avg_ns`.
pub fn saturation(rows: &[SaturationRow]) -> String {
    let mut out = String::from("network,offered,accepted,avg_ns\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{}",
            r.network, r.offered, r.accepted, r.avg_ns
        );
    }
    out
}

/// `network,fraction,goodput,avg_ns,p99_ns,delivered,abandoned,generated,retransmissions`.
pub fn faults(rows: &[DegradationRow]) -> String {
    let mut out = String::from(
        "network,fraction,goodput,avg_ns,p99_ns,delivered,abandoned,generated,retransmissions\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{}",
            r.network,
            r.fraction,
            r.report.delivery_ratio(),
            r.report.avg_ns,
            r.report.p99_ns,
            r.report.delivered,
            r.report.abandoned,
            r.report.generated,
            r.report.retransmissions
        );
    }
    out
}

/// `network,seed,events,repairs,violations,recovered,max_ttr_ns,stranded,flap_amp,delivered,abandoned,generated`.
pub fn chaos(rows: &[ChaosRow]) -> String {
    let mut out = String::from(
        "network,seed,events,repairs,violations,recovered,max_ttr_ns,stranded,flap_amp,delivered,abandoned,generated\n",
    );
    for r in rows {
        let recovered = r.report.recoveries.iter().filter(|x| x.recovered()).count();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            r.network,
            r.seed,
            r.events,
            r.report.recoveries.len(),
            r.report.oracle.total(),
            recovered,
            r.report.max_recovery_ns().unwrap_or(-1.0),
            r.report.stranded,
            r.report.flap_amplification(),
            r.report.delivered,
            r.report.abandoned,
            r.report.generated
        );
    }
    out
}

/// `network,pattern,load,generated,delivered,expired,ingress_drops,abandoned,goodput_pkt_per_us,flows,jain,min_delivered,max_delivered,p99_ns,p999_ns,violations`.
pub fn overload(rows: &[OverloadRow]) -> String {
    let mut out = String::from(
        "network,pattern,load,generated,delivered,expired,ingress_drops,abandoned,goodput_pkt_per_us,flows,jain,min_delivered,max_delivered,p99_ns,p999_ns,violations\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.network,
            r.pattern,
            r.load,
            r.report.generated,
            r.report.delivered,
            r.report.expired,
            r.report.ingress_drops,
            r.report.abandoned,
            r.goodput_pkt_per_us(),
            r.report.fairness.flows,
            r.report.fairness.jain,
            r.report.fairness.min_delivered,
            r.report.fairness.max_delivered,
            r.report.p99_ns,
            r.report.p999_ns,
            r.report.oracle.total()
        );
    }
    out
}

/// `endpoints,wall_ms,events,events_per_sec,peak_rss_bytes,state_bytes,bytes_per_endpoint,delivered,generated,peak_pending,calendar`.
pub fn scaling(rows: &[ScalingRow]) -> String {
    let mut out = String::from(
        "endpoints,wall_ms,events,events_per_sec,peak_rss_bytes,state_bytes,bytes_per_endpoint,delivered,generated,peak_pending,calendar\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{}",
            r.endpoints,
            r.wall_ns as f64 / 1e6,
            r.events,
            r.events_per_sec(),
            r.peak_rss_bytes,
            r.state_bytes,
            r.bytes_per_endpoint(),
            r.delivered,
            r.generated,
            r.peak_pending,
            r.calendar_backed
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{table_v, EvalConfig};

    #[test]
    fn table5_csv_is_well_formed() {
        let rows = table_v(&EvalConfig {
            nodes: 64,
            packets_per_node: 20,
            ..EvalConfig::tiny()
        });
        let csv = table5(&rows);
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 6); // header + 5 rows
        assert!(lines[0].starts_with("multiplicity,"));
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 5, "{line}");
        }
    }

    #[test]
    fn fig8_csv_has_all_cells() {
        let sweep = crate::experiments::figure8();
        let csv = fig8(&sweep);
        // 4 scales x 4 networks + header.
        assert_eq!(csv.trim().lines().count(), 17);
    }
}

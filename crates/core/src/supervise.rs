//! Supervised job execution: panic isolation, watchdog deadlines with
//! jittered retries, and per-sweep failure budgets.
//!
//! This is the timing-aware layer above [`crate::sim::par`]. The `sim`
//! crate sits behind the lint wall that bans wall-clock reads, so
//! everything involving `Instant` — per-job wall times and the
//! `--job-timeout` watchdog — lives here in `core` instead.
//!
//! Two execution paths:
//!
//! * **No deadline** (the default): jobs fan out over
//!   [`par::par_map_isolated`] — fully deterministic, panic-isolated,
//!   budget-aware — and this layer only adds per-job wall clocks.
//! * **Deadline set**: each pool worker doubles as a supervisor. It runs
//!   the job on a scoped *attempt* thread and waits on a channel with
//!   [`std::sync::mpsc::Receiver::recv_timeout`]. A timed-out attempt is
//!   retried after a jittered exponential backoff (mirroring
//!   `net::faults`' retransmission backoff) up to
//!   [`Policy::timeout_retries`] extra attempts, then quarantined as
//!   [`JobErrorKind::TimedOut`]. Abandoned attempts cannot be killed
//!   (Rust threads are not cancellable), so they run to completion in
//!   the background; the scope join at the end of the sweep waits for
//!   them. A *truly* non-terminating job therefore still pins the final
//!   join — the recovery path for wedged runs is `kill -9` plus
//!   `--resume`, which the sweep journal makes safe. The watchdog's
//!   value is that every *other* job completes, is journaled, and is
//!   reported; timeouts are inherently timing-dependent, so the
//!   determinism contract only covers deadline-off runs.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use crate::error::{JobError, JobErrorKind};
use crate::sim::par;
use crate::sim::rng::StreamRng;

/// Supervision knobs for one sweep runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Policy {
    /// Per-attempt watchdog deadline; `None` (the default) disables the
    /// watchdog entirely.
    pub job_timeout: Option<Duration>,
    /// Extra attempts granted to a timed-out job before it is
    /// quarantined (so a job runs at most `timeout_retries + 1` times).
    pub timeout_retries: u32,
    /// Tolerated failures per sweep before the remaining queue is
    /// cancelled; `None` means unlimited.
    pub fail_budget: Option<usize>,
}

impl Default for Policy {
    fn default() -> Self {
        Policy {
            job_timeout: None,
            timeout_retries: 2,
            fail_budget: None,
        }
    }
}

/// Outcome of one supervised job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport<R> {
    /// The result, or a structured failure.
    pub result: Result<R, JobError>,
    /// Wall-clock time across all attempts, milliseconds (0 for jobs
    /// that never ran).
    pub wall_ms: u64,
}

/// Outcome of one supervised batch: submission-ordered reports plus
/// whether the failure budget cancelled the queue.
#[derive(Debug)]
pub struct RunOutcome<R> {
    /// One report per input item, in submission order.
    pub jobs: Vec<JobReport<R>>,
    /// True when the failure budget was exhausted and the remaining
    /// queue was cancelled ([`JobErrorKind::Skipped`] slots).
    pub aborted: bool,
}

/// Backoff before retrying a timed-out job: capped exponential base with
/// deterministic per-`(job, attempt)` jitter, the same shape as
/// `net::faults`' retransmission backoff (`base * 2^attempt`, capped,
/// plus seeded jitter so retries don't stampede in lockstep).
pub fn retry_delay_ms(job: u64, attempt: u32) -> u64 {
    let base = 25u64.saturating_mul(1 << attempt.min(4)).min(250);
    let mut rng = StreamRng::named(0xBA1D_0E1A, "jobretry", (job << 32) | u64::from(attempt));
    base + rng.gen_range(0..=base / 2)
}

/// Runs `f` over `items` under `policy` on up to `threads` workers,
/// returning submission-ordered [`JobReport`]s. `f` receives the item's
/// submission index alongside the item.
///
/// Panics never propagate out of jobs; they become
/// [`JobErrorKind::Panicked`] reports (panics are *not* retried — a
/// panic is a bug in the job, not a scheduling hiccup). See the module
/// docs for the watchdog semantics when [`Policy::job_timeout`] is set.
pub fn run_jobs<T, R, F>(threads: usize, policy: &Policy, items: &[T], f: F) -> RunOutcome<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    match policy.job_timeout {
        None => run_without_deadline(threads, policy, items, &f),
        Some(deadline) => run_with_deadline(threads, policy, deadline, items, &f),
    }
}

/// Deadline-off path: delegate to the deterministic isolated pool and
/// add per-job wall clocks.
fn run_without_deadline<T, R, F>(
    threads: usize,
    policy: &Policy,
    items: &[T],
    f: &F,
) -> RunOutcome<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let indices: Vec<usize> = (0..items.len()).collect();
    let (slots, aborted) = par::par_map_isolated(threads, indices, policy.fail_budget, |&i| {
        let t0 = Instant::now();
        let r = f(i, &items[i]);
        (r, elapsed_ms(t0))
    });
    let jobs = slots
        .into_iter()
        .map(|slot| match slot {
            par::JobSlot::Done((r, wall_ms)) => JobReport {
                result: Ok(r),
                wall_ms,
            },
            par::JobSlot::Panicked(payload) => JobReport {
                result: Err(JobError {
                    kind: JobErrorKind::Panicked,
                    payload,
                    attempts: 1,
                }),
                wall_ms: 0,
            },
            par::JobSlot::Skipped => JobReport {
                result: Err(JobError::skipped()),
                wall_ms: 0,
            },
        })
        .collect();
    RunOutcome { jobs, aborted }
}

/// Watchdog path: each worker supervises its job on an attempt thread.
fn run_with_deadline<T, R, F>(
    threads: usize,
    policy: &Policy,
    deadline: Duration,
    items: &[T],
    f: &F,
) -> RunOutcome<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.clamp(1, n.max(1));
    let queue: Mutex<std::collections::VecDeque<usize>> = Mutex::new((0..n).collect());
    let mut out: Vec<Option<JobReport<R>>> = (0..n).map(|_| None).collect();
    let slots: Vec<Mutex<&mut Option<JobReport<R>>>> = out.iter_mut().map(Mutex::new).collect();
    let failures = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let queue = &queue;
            let slots = &slots;
            let failures = &failures;
            let abort = &abort;
            scope.spawn(move || loop {
                let job = queue
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .pop_front();
                let Some(i) = job else { break };
                let report = if abort.load(Ordering::Relaxed) {
                    JobReport {
                        result: Err(JobError::skipped()),
                        wall_ms: 0,
                    }
                } else {
                    supervise_one(scope, policy, deadline, i, items, f)
                };
                let failed = matches!(
                    &report.result,
                    Err(e) if e.kind != JobErrorKind::Skipped
                );
                **slots[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(report);
                if failed {
                    let seen = failures.fetch_add(1, Ordering::Relaxed) + 1;
                    if policy.fail_budget.is_some_and(|b| seen > b) {
                        abort.store(true, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    drop(slots);
    let jobs = out
        .into_iter()
        .map(|r| match r {
            Some(report) => report,
            None => unreachable!("the deadline pool pops every queued job"),
        })
        .collect();
    RunOutcome {
        jobs,
        aborted: abort.load(Ordering::Relaxed),
    }
}

/// Runs one job under the watchdog: spawn an attempt thread, wait for
/// its result up to `deadline`, retry with jittered backoff on timeout.
fn supervise_one<'scope, T, R, F>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    policy: &Policy,
    deadline: Duration,
    i: usize,
    items: &'scope [T],
    f: &'scope F,
) -> JobReport<R>
where
    T: Sync,
    R: Send + 'scope,
    F: Fn(usize, &T) -> R + Sync,
{
    let t0 = Instant::now();
    let max_attempts = policy.timeout_retries.saturating_add(1);
    for attempt in 1..=max_attempts {
        let (tx, rx) = mpsc::channel();
        scope.spawn(move || {
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, &items[i])));
            // The supervisor may have given up on us (receiver dropped
            // after a timeout); a dead letter is fine.
            let _ = tx.send(out);
        });
        match rx.recv_timeout(deadline) {
            Ok(Ok(r)) => {
                return JobReport {
                    result: Ok(r),
                    wall_ms: elapsed_ms(t0),
                }
            }
            Ok(Err(payload)) => {
                return JobReport {
                    result: Err(JobError {
                        kind: JobErrorKind::Panicked,
                        payload: par::panic_message(payload.as_ref()),
                        attempts: attempt,
                    }),
                    wall_ms: elapsed_ms(t0),
                }
            }
            Err(_) => {
                if attempt < max_attempts {
                    std::thread::sleep(Duration::from_millis(retry_delay_ms(i as u64, attempt)));
                }
            }
        }
    }
    JobReport {
        result: Err(JobError {
            kind: JobErrorKind::TimedOut,
            payload: format!(
                "exceeded the {} ms deadline on all {max_attempts} attempts; quarantined",
                deadline.as_millis()
            ),
            attempts: max_attempts,
        }),
        wall_ms: elapsed_ms(t0),
    }
}

/// Milliseconds since `t0`, saturating.
pub(crate) fn elapsed_ms(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_millis()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quietly<R>(body: impl FnOnce() -> R) -> R {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = body();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn default_policy_is_fully_permissive() {
        let p = Policy::default();
        assert_eq!(p.job_timeout, None);
        assert_eq!(p.timeout_retries, 2);
        assert_eq!(p.fail_budget, None);
    }

    #[test]
    fn deadline_off_isolates_panics_and_reports_siblings() {
        let items: Vec<u32> = (0..12).collect();
        let outcome = quietly(|| {
            run_jobs(4, &Policy::default(), &items, |_, &x| {
                if x == 7 {
                    panic!("job 7 died");
                }
                x * 10
            })
        });
        assert!(!outcome.aborted);
        for (i, job) in outcome.jobs.iter().enumerate() {
            if i == 7 {
                let err = job.result.as_ref().expect_err("job 7 failed");
                assert_eq!(err.kind, JobErrorKind::Panicked);
                assert_eq!(err.payload, "job 7 died");
            } else {
                assert_eq!(job.result, Ok(i as u32 * 10));
            }
        }
    }

    #[test]
    fn budget_exhaustion_aborts_and_skips() {
        let items: Vec<u32> = (0..10).collect();
        let outcome = quietly(|| {
            run_jobs(
                1,
                &Policy {
                    fail_budget: Some(0),
                    ..Policy::default()
                },
                &items,
                |_, &x| {
                    if x == 2 {
                        panic!("trip the budget");
                    }
                    x
                },
            )
        });
        assert!(outcome.aborted);
        assert_eq!(
            outcome.jobs[2].result.as_ref().expect_err("failed").kind,
            JobErrorKind::Panicked
        );
        assert!(outcome.jobs[3..].iter().all(|j| j
            .result
            .as_ref()
            .is_err_and(|e| e.kind == JobErrorKind::Skipped)));
    }

    #[test]
    fn watchdog_quarantines_a_hung_job_and_finishes_the_rest() {
        let items: Vec<u32> = (0..6).collect();
        let policy = Policy {
            job_timeout: Some(Duration::from_millis(40)),
            timeout_retries: 1,
            fail_budget: None,
        };
        // Job 3 "hangs" for far longer than the deadline (but finitely,
        // so the final scope join completes); everything else is instant.
        let outcome = run_jobs(2, &policy, &items, |_, &x| {
            if x == 3 {
                std::thread::sleep(Duration::from_millis(400));
            }
            x + 100
        });
        assert!(!outcome.aborted);
        for (i, job) in outcome.jobs.iter().enumerate() {
            if i == 3 {
                let err = job.result.as_ref().expect_err("job 3 quarantined");
                assert_eq!(err.kind, JobErrorKind::TimedOut);
                assert_eq!(err.attempts, 2, "one retry before quarantine");
                assert!(job.wall_ms >= 80, "two deadlines elapsed");
            } else {
                assert_eq!(job.result, Ok(i as u32 + 100));
            }
        }
    }

    #[test]
    fn watchdog_passes_fast_jobs_and_panics_through() {
        let items: Vec<u32> = (0..8).collect();
        let policy = Policy {
            job_timeout: Some(Duration::from_secs(30)),
            ..Policy::default()
        };
        let outcome = quietly(|| {
            run_jobs(3, &policy, &items, |_, &x| {
                if x == 5 {
                    panic!("panic under watchdog");
                }
                x
            })
        });
        assert!(!outcome.aborted);
        assert_eq!(
            outcome.jobs[5].result.as_ref().expect_err("panicked").kind,
            JobErrorKind::Panicked,
            "panics are reported, not retried"
        );
        assert_eq!(outcome.jobs[4].result, Ok(4));
    }

    #[test]
    fn retry_delay_is_deterministic_capped_exponential() {
        assert_eq!(retry_delay_ms(3, 1), retry_delay_ms(3, 1));
        assert_ne!(
            retry_delay_ms(3, 1),
            retry_delay_ms(4, 1),
            "jitter varies per job"
        );
        for job in 0..20u64 {
            for attempt in 1..=8u32 {
                let d = retry_delay_ms(job, attempt);
                let base = 25u64.saturating_mul(1 << attempt.min(4)).min(250);
                assert!(d >= base && d <= base + base / 2, "{job}/{attempt}: {d}");
            }
        }
    }
}

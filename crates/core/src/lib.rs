//! # Baldur — an all-optical transistor-laser network (HPCA 2020), reproduced in Rust
//!
//! This crate is the public façade of the reproduction: it re-exports the
//! substrate crates and provides [`experiments`] — one function per table
//! and figure of the paper's evaluation, returning structured data that
//! the benchmark harnesses, examples, and integration tests all share.
//!
//! ## The system in one paragraph
//!
//! Baldur routes packets *entirely in the optical domain* using transistor
//! laser (TL) logic gates: a randomized multi-butterfly of 2x2 bufferless
//! switches decodes a length-encoded routing bit per stage on the fly,
//! drops packets on output contention (sources retransmit with binary
//! exponential backoff), and uses path multiplicity m (extra parallel
//! ports per direction) to make drops rare. No buffers, no clock
//! recovery, no O-E/E-O conversions inside the fabric — which is where
//! its latency, power, and scalability advantages come from.
//!
//! ## Quickstart
//!
//! ```
//! use baldur::prelude::*;
//!
//! // Simulate 64 nodes of Baldur under random-permutation traffic at
//! // 30% load, 20 packets per node.
//! let cfg = RunConfig::new(
//!     64,
//!     NetworkKind::Baldur(BaldurParams::paper_for(64)),
//!     Workload::Synthetic {
//!         pattern: Pattern::RandomPermutation,
//!         load: 0.3,
//!         packets_per_node: 20,
//!     },
//! );
//! let report = baldur::run(&cfg);
//! assert!(report.delivery_ratio() > 0.99);
//! println!("avg {:.1} ns, p99 {:.1} ns", report.avg_ns, report.p99_ns);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`sim`] | discrete-event kernel, RNG streams, statistics |
//! | [`phy`] | 8b/10b, length-based routing code, optical waveforms |
//! | [`tl`] | TL device model, gate-level circuit simulator, the 2x2 switch |
//! | [`topo`] | multi-butterfly, dragonfly, fat-tree, ideal topologies |
//! | [`net`] | packet-level simulation of Baldur + electrical baselines |
//! | [`power`] | power models (Figures 8, 9; AWGR comparison) |
//! | [`cost`] | cost + packaging models (Figure 10, Sec. IV-G) |

pub use baldur_cost as cost;
pub use baldur_net as net;
pub use baldur_phy as phy;
pub use baldur_power as power;
pub use baldur_sim as sim;
pub use baldur_tl as tl;
pub use baldur_topo as topo;

pub mod csv;
pub mod error;
pub mod experiments;
pub mod hash;
pub mod registry;
pub mod supervise;
pub mod sweep;

pub use net::runner::{run, NetworkKind, RunConfig, Workload};

/// Everything needed for typical use.
pub mod prelude {
    pub use crate::net::config::{BaldurParams, LinkParams, RouterParams};
    pub use crate::net::faults::{FaultKind, FaultPlan};
    pub use crate::net::metrics::LatencyReport;
    pub use crate::net::runner::{run, NetworkKind, RunConfig, Workload};
    pub use crate::net::traffic::Pattern;
    pub use crate::net::workloads::{HpcApp, TraceParams};
    pub use crate::power::{NetworkPower, PowerBreakdown};
    pub use crate::sim::{Duration, Time};
    pub use crate::topo::graph::NodeId;
}

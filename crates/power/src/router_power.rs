//! Electrical router-core power (the ORION 3.0 + Cacti 6.5 substitute).
//!
//! The paper runs ORION/Cacti per configuration; we use the standard
//! decomposition — per-port buffering (linear in radix) plus
//! crossbar/allocation (super-linear in radix) — as a power law
//! `core(r) = linear·r + c·r^gamma`, with `(c, gamma)` calibrated per
//! network family against the paper's quoted anchors:
//!
//! * multi-butterfly: 223.5 W/node at 1K with 41.7% conversion overhead ⇒
//!   a radix-16, radix-2-logical switch core of ≈26 W; the MB's trivial
//!   destination-bit routing keeps its allocator simple, so its core
//!   scales gently,
//! * fat-tree: 1/6 of MB per node at 1K and 9.0x growth to 1M (radix
//!   16 → 160) ⇒ `gamma ≈ 2.1`,
//! * dragonfly: 3.2x Baldur at 1K and 7.8x growth to 1M (radix 15 → 95)
//!   ⇒ `gamma ≈ 2.2` (its adaptive-routing allocator is the most complex;
//!   the paper itself calls its dragonfly/fat-tree numbers optimistic for
//!   excluding adaptive-routing logic).
//!
//! The calibration targets are asserted in this module's tests, so any
//! drift in the model is caught immediately.

use serde::{Deserialize, Serialize};

/// A router-core power law.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreModel {
    /// Per-port (buffer + local SerDes driver) watts.
    pub linear_w_per_port: f64,
    /// Crossbar/allocator coefficient.
    pub c: f64,
    /// Crossbar/allocator exponent.
    pub gamma: f64,
}

impl CoreModel {
    /// Core power of a radix-`r` router, watts.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero.
    pub fn core_w(&self, r: u32) -> f64 {
        assert!(r > 0, "radix must be positive");
        self.linear_w_per_port * f64::from(r) + self.c * f64::from(r).powf(self.gamma)
    }

    /// Multi-butterfly switches (radix-2 logical, 2m ports/side).
    pub fn multibutterfly() -> Self {
        // core(16) ≈ 26 W (derived from the paper's 223.5 W/node & 41.7%
        // conversion-share anchors); simple routing ⇒ near-quadratic only
        // through the crossbar.
        CoreModel {
            linear_w_per_port: 0.40,
            c: 0.0766,
            gamma: 2.0,
        }
    }

    /// Fat-tree switches (adaptive up-routing).
    pub fn fattree() -> Self {
        // core(16) ≈ 79.7 W and core(160) ≈ 10.3 kW (paper growth 9.0x).
        CoreModel {
            linear_w_per_port: 0.40,
            c: 0.191,
            gamma: 2.146,
        }
    }

    /// Dragonfly routers (UGAL adaptive routing).
    pub fn dragonfly() -> Self {
        // core(15) ≈ 80.5 W and core(95) ≈ 4.8 kW (paper growth 7.8x).
        CoreModel {
            linear_w_per_port: 0.40,
            c: 0.166,
            gamma: 2.255,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mb_core_anchor() {
        let w = CoreModel::multibutterfly().core_w(16);
        assert!((w - 26.0).abs() < 1.0, "{w}");
    }

    #[test]
    fn fattree_core_anchors() {
        let m = CoreModel::fattree();
        let w16 = m.core_w(16);
        let w160 = m.core_w(160);
        assert!((w16 - 79.7).abs() < 4.0, "{w16}");
        assert!((w160 / 10_325.0 - 1.0).abs() < 0.10, "{w160}");
    }

    #[test]
    fn dragonfly_core_anchors() {
        let m = CoreModel::dragonfly();
        let w15 = m.core_w(15);
        let w95 = m.core_w(95);
        assert!((w15 - 80.5).abs() < 4.0, "{w15}");
        assert!((w95 / 4_822.0 - 1.0).abs() < 0.10, "{w95}");
    }

    #[test]
    fn cores_grow_monotonically() {
        for m in [
            CoreModel::multibutterfly(),
            CoreModel::fattree(),
            CoreModel::dragonfly(),
        ] {
            let mut last = 0.0;
            for r in [4u32, 8, 16, 32, 64, 128] {
                let w = m.core_w(r);
                assert!(w > last);
                last = w;
            }
        }
    }
}

//! The AWGR optical-packet-switching comparison (paper Sec. VII).
//!
//! At 32 nodes the paper compares Baldur (multiplicity 3) against a
//! 32-radix AWGR network with 3 wavelengths: excluding the node-side
//! transceivers and SerDes common to both, Baldur consumes ≈0.7 W/node
//! (the TL chips) versus ≈4.2 W/node for the AWGR (optical receivers,
//! SerDes, buffers for electrical header processing, tunable wavelength
//! converters). The AWGR also pays ~90 ns of electrical header processing
//! per hop against Baldur's 0.94 ns switch latency.

use baldur_tl::gate_count::SwitchDesign;
use serde::{Deserialize, Serialize};

use crate::constants::{SERDES_W, TL_GATE_MW};

/// AWGR per-node power components (watts), per the references the paper
/// cites for AWGR networks \[3\], \[24\].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AwgrModel {
    /// Burst-mode optical receiver per wavelength path.
    pub receiver_w: f64,
    /// SerDes lanes for header processing (in and out).
    pub serdes_lanes: u32,
    /// Buffering for electrical header processing.
    pub buffer_w: f64,
    /// Tunable wavelength converter.
    pub twc_w: f64,
}

impl AwgrModel {
    /// Reference configuration for the 32-node comparison.
    pub fn paper() -> Self {
        AwgrModel {
            receiver_w: 0.8,
            serdes_lanes: 2,
            buffer_w: 0.3,
            twc_w: 1.7,
        }
    }

    /// Per-node power, excluding node transceivers/SerDes common to both
    /// networks.
    pub fn per_node_w(&self) -> f64 {
        self.receiver_w + f64::from(self.serdes_lanes) * SERDES_W + self.buffer_w + self.twc_w
    }

    /// Electrical header-processing latency per hop (Table VI switch
    /// latency), ns.
    pub fn header_latency_ns(&self) -> f64 {
        90.0
    }
}

impl Default for AwgrModel {
    fn default() -> Self {
        AwgrModel::paper()
    }
}

/// Baldur per-node power at 32 nodes (multiplicity 3), TL chips only —
/// the like-for-like number against [`AwgrModel::per_node_w`].
pub fn baldur_32node_tl_only_w() -> f64 {
    let nodes = 32u64;
    let stages = nodes.trailing_zeros() as u64;
    let gates = u64::from(SwitchDesign::new(3).gates());
    let switches = stages * (nodes / 2);
    switches as f64 * gates as f64 * TL_GATE_MW * 1e-3 / nodes as f64
}

/// Baldur's per-hop switch latency at multiplicity 3, ns.
pub fn baldur_32node_latency_ns() -> f64 {
    SwitchDesign::new(3).latency_ns()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baldur_is_about_0_7_w_per_node() {
        let w = baldur_32node_tl_only_w();
        assert!((w - 0.7).abs() < 0.1, "{w}");
    }

    #[test]
    fn awgr_is_about_4_2_w_per_node() {
        let w = AwgrModel::paper().per_node_w();
        assert!((w - 4.2).abs() < 0.1, "{w}");
    }

    #[test]
    fn baldur_wins_latency_by_two_orders() {
        let ratio = AwgrModel::paper().header_latency_ns() / baldur_32node_latency_ns();
        assert!(ratio > 50.0, "{ratio}");
    }
}

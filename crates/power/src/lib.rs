//! Power models for the Baldur reproduction (paper Sec. VI-A and VII).
//!
//! The paper composes network power from datasheet and tool numbers:
//! Cisco SFP28 transceivers (1.5 W), a 32 nm SerDes (0.693 W), a 1 MB
//! retransmission buffer (0.741 W), ORION 3.0 + Cacti 6.5 router power,
//! and the TL gate power of Table IV (0.406 mW). This crate reproduces
//! that composition:
//!
//! * [`constants`] — the cited component numbers,
//! * [`router_power`] — the ORION-like electrical router-core model, with
//!   per-network coefficients calibrated to the paper's quoted anchors
//!   (see DESIGN.md, substitution 4),
//! * [`networks`] — per-node power with component breakdown for Baldur,
//!   electrical multi-butterfly, dragonfly, and fat-tree at any scale,
//! * [`scaling`] — the Figure 8 sweep (1K → 1.4M nodes),
//! * [`sensitivity`] — the Figure 9 0.5x/2x switch-power analysis,
//! * [`awgr`] — the Sec. VII AWGR comparison at 32 nodes.

pub mod awgr;
pub mod constants;
pub mod networks;
pub mod router_power;
pub mod scaling;
pub mod sensitivity;

pub use networks::{NetworkPower, PowerBreakdown};
pub use scaling::{scaling_sweep, ScalePoint};

/// Baldur's multiplicity schedule by scale (Sec. IV-E): 3 for tens of
/// nodes, 4 up to ~16K, 5 beyond — the same schedule `baldur-net` uses.
pub fn multiplicity_for(nodes: u64) -> u32 {
    if nodes >= 16_384 {
        5
    } else if nodes >= 64 {
        4
    } else {
        3
    }
}

//! Per-node network power with component breakdown (Figure 8's data).

use baldur_tl::gate_count::SwitchDesign;
use baldur_topo::dragonfly::Dragonfly;
use baldur_topo::fattree::FatTree;
use serde::{Deserialize, Serialize};

use crate::constants::{
    ELECTRICAL_PORT_W, OPTICAL_PORT_W, RETX_BUFFER_W, SERDES_W, TL_GATE_MW, TRANSCEIVER_W,
};
use crate::router_power::CoreModel;

/// Node count above which dragonfly intra-group links must go optical
/// (paper: ~83K, when groups grow too large for copper).
pub const DRAGONFLY_OPTICAL_LOCAL_THRESHOLD: u64 = 83_000;

/// Per-node power decomposition, watts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Optical transceiver modules.
    pub transceivers_w: f64,
    /// SerDes lanes.
    pub serdes_w: f64,
    /// Packet / retransmission buffering.
    pub buffers_w: f64,
    /// Switch logic (router cores, or TL gates for Baldur).
    pub switching_w: f64,
}

impl PowerBreakdown {
    /// Total watts per node.
    pub fn total_w(&self) -> f64 {
        self.transceivers_w + self.serdes_w + self.buffers_w + self.switching_w
    }

    /// Conversion overhead share (transceivers + SerDes), as in the
    /// paper's "41.7% of the power is attributed to O-E/E-O conversions
    /// and SerDes units".
    pub fn conversion_fraction(&self) -> f64 {
        (self.transceivers_w + self.serdes_w) / self.total_w()
    }

    /// Scales the switching component (Figure 9 sensitivity analysis).
    pub fn with_switch_scale(mut self, factor: f64) -> Self {
        self.switching_w *= factor;
        self
    }
}

/// The network families of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetworkPower {
    /// All-optical Baldur.
    Baldur,
    /// Electrical multi-butterfly.
    ElectricalMultiButterfly,
    /// Dragonfly.
    Dragonfly,
    /// Fat-tree.
    FatTree,
}

impl NetworkPower {
    /// All four, in Figure 8 order.
    pub const ALL: [NetworkPower; 4] = [
        NetworkPower::Baldur,
        NetworkPower::ElectricalMultiButterfly,
        NetworkPower::Dragonfly,
        NetworkPower::FatTree,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            NetworkPower::Baldur => "baldur",
            NetworkPower::ElectricalMultiButterfly => "electrical_mb",
            NetworkPower::Dragonfly => "dragonfly",
            NetworkPower::FatTree => "fattree",
        }
    }

    /// The actual node count this network family instantiates for a
    /// requested scale (the paper reports scale *ranges* because each
    /// topology rounds differently).
    pub fn natural_size(&self, requested: u64) -> u64 {
        match self {
            NetworkPower::Baldur | NetworkPower::ElectricalMultiButterfly => {
                requested.next_power_of_two()
            }
            NetworkPower::Dragonfly => Dragonfly::at_least(requested).node_count(),
            NetworkPower::FatTree => FatTree::at_least(requested).node_count(),
        }
    }

    /// Per-node power breakdown at (roughly) `requested` nodes.
    pub fn per_node(&self, requested: u64) -> PowerBreakdown {
        match self {
            NetworkPower::Baldur => baldur_per_node(requested),
            NetworkPower::ElectricalMultiButterfly => mb_per_node(requested),
            NetworkPower::Dragonfly => dragonfly_per_node(requested),
            NetworkPower::FatTree => fattree_per_node(requested),
        }
    }
}

/// Baldur: bottom-up from real component counts. Per node: one transceiver
/// pair (TX + RX fiber interfaces) with SerDes, the 1 MB retransmission
/// buffer, and the node's share of the TL switch gates. No other
/// conversions exist anywhere in the fabric — that is the whole point.
fn baldur_per_node(requested: u64) -> PowerBreakdown {
    let nodes = requested.next_power_of_two();
    let stages = nodes.trailing_zeros() as u64;
    let m = crate::multiplicity_for(nodes);
    let gates = u64::from(SwitchDesign::new(m).gates());
    let switches = stages * (nodes / 2);
    let tl_w_total = switches as f64 * gates as f64 * TL_GATE_MW * 1e-3;
    PowerBreakdown {
        transceivers_w: 2.0 * TRANSCEIVER_W,
        serdes_w: 2.0 * SERDES_W,
        buffers_w: RETX_BUFFER_W,
        switching_w: tl_w_total / nodes as f64,
    }
}

/// Electrical multi-butterfly (multiplicity 4, radix-16 switches): per
/// node there are `stages / 2` switch cores, 2 node fibers (optical), and
/// `m(stages-1)` inter-stage links of which roughly a third leave the
/// cabinet and need optics (packaging-derived; calibrated so the 1K-scale
/// conversion share matches the paper's 41.7%).
fn mb_per_node(requested: u64) -> PowerBreakdown {
    let nodes = requested.next_power_of_two();
    let stages = nodes.trailing_zeros() as f64;
    let m = 4.0;
    let core = CoreModel::multibutterfly().core_w(16);
    let cores_per_node = stages / 2.0;
    let internal_links = m * (stages - 1.0);
    let optical_fraction = 0.32;
    let node_links = 2.0;
    let transceivers =
        node_links * 2.0 * TRANSCEIVER_W + internal_links * optical_fraction * 2.0 * TRANSCEIVER_W;
    let serdes = (node_links + internal_links) * 2.0 * SERDES_W;
    PowerBreakdown {
        transceivers_w: transceivers,
        serdes_w: serdes,
        // Buffering is inside the ORION core model; keep it there and
        // report the core under "switching" minus a nominal buffer share.
        buffers_w: cores_per_node * core * 0.25,
        switching_w: cores_per_node * core * 0.75,
    }
}

fn dragonfly_per_node(requested: u64) -> PowerBreakdown {
    let df = Dragonfly::at_least(requested);
    let p = f64::from(df.p);
    let a = f64::from(df.a);
    let h = f64::from(df.h);
    let core = CoreModel::dragonfly().core_w(df.radix());
    // Local (intra-group) links stay copper until groups outgrow the
    // cabinet (paper: ~83K nodes), then need optics too.
    let local_optical = if df.node_count() >= DRAGONFLY_OPTICAL_LOCAL_THRESHOLD {
        1.0
    } else {
        0.0
    };
    // Per node: a NIC transceiver+SerDes, plus the router's ports shared
    // by its p nodes — every port has a SerDes; optical ports also carry a
    // transceiver (terminal links are short copper).
    let transceivers_w = TRANSCEIVER_W * (1.0 + ((a - 1.0) * local_optical + h) / p);
    let serdes_w = SERDES_W * (1.0 + (p + (a - 1.0) + h) / p);
    // Silence unused-constant lint paths in the electrical/optical split.
    let _ = (ELECTRICAL_PORT_W, OPTICAL_PORT_W);
    PowerBreakdown {
        transceivers_w,
        serdes_w,
        buffers_w: core / p * 0.25,
        switching_w: core / p * 0.75,
    }
}

fn fattree_per_node(requested: u64) -> PowerBreakdown {
    let ft = FatTree::at_least(requested);
    let k = f64::from(ft.k);
    let core = CoreModel::fattree().core_w(ft.k);
    let switches_per_node = 5.0 / k; // (k^2 + k^2/4) / (k^3/4)
                                     // Per node: 1 terminal link (electrical), 1 edge-agg link and 1
                                     // agg-core link (optical at the paper's 50/100 ns distances).
    let transceivers = 1.0 * TRANSCEIVER_W + 2.0 * 2.0 * TRANSCEIVER_W;
    let serdes = (1.0 + 1.0 + 2.0 * 2.0) * SERDES_W;
    PowerBreakdown {
        transceivers_w: transceivers,
        serdes_w: serdes,
        buffers_w: switches_per_node * core * 0.25,
        switching_w: switches_per_node * core * 0.75,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mb_1k_anchor_holds() {
        // Paper Sec. II-A: 223.5 W/node at 1,024 nodes, 41.7% conversions.
        let b = NetworkPower::ElectricalMultiButterfly.per_node(1_024);
        assert!((b.total_w() / 223.5 - 1.0).abs() < 0.05, "{}", b.total_w());
        assert!(
            (b.conversion_fraction() - 0.417).abs() < 0.05,
            "{}",
            b.conversion_fraction()
        );
    }

    #[test]
    fn mb_is_6x_fattree_at_1k() {
        let mb = NetworkPower::ElectricalMultiButterfly
            .per_node(1_024)
            .total_w();
        let ft = NetworkPower::FatTree.per_node(1_024).total_w();
        let ratio = mb / ft;
        assert!((5.0..7.5).contains(&ratio), "MB/FT = {ratio}");
    }

    #[test]
    fn baldur_growth_1k_to_1m_is_about_1_7x() {
        let lo = NetworkPower::Baldur.per_node(1_024).total_w();
        let hi = NetworkPower::Baldur.per_node(1 << 20).total_w();
        let g = hi / lo;
        assert!((1.4..2.0).contains(&g), "Baldur growth {g}");
    }

    #[test]
    fn electrical_growth_factors_match_paper_bands() {
        // Paper: dragonfly 7.8x, fat-tree 9.0x, MB 2.0x from 1K-2K to
        // 1M-1.4M.
        let g = |n: NetworkPower| n.per_node(1_050_000).total_w() / n.per_node(1_024).total_w();
        let df = g(NetworkPower::Dragonfly);
        let ft = g(NetworkPower::FatTree);
        let mb = g(NetworkPower::ElectricalMultiButterfly);
        assert!((6.0..10.0).contains(&df), "dragonfly growth {df}");
        assert!((7.0..11.0).contains(&ft), "fat-tree growth {ft}");
        assert!((1.7..2.4).contains(&mb), "MB growth {mb}");
    }

    #[test]
    fn baldur_wins_at_every_scale() {
        for scale in [1_024u64, 16_384, 131_072, 1 << 20] {
            let b = NetworkPower::Baldur.per_node(scale).total_w();
            for n in [
                NetworkPower::ElectricalMultiButterfly,
                NetworkPower::Dragonfly,
                NetworkPower::FatTree,
            ] {
                let w = n.per_node(scale).total_w();
                assert!(w > b, "{} at {scale}: {w} vs baldur {b}", n.name());
            }
        }
    }

    #[test]
    fn improvement_bands_match_figure_8() {
        // 1K-2K: 3.2x - 26.4x; 1M-1.4M: 14.6x - 31.0x (paper abstract).
        let at = |scale: u64| {
            let b = NetworkPower::Baldur.per_node(scale).total_w();
            NetworkPower::ALL[1..]
                .iter()
                .map(|n| n.per_node(scale).total_w() / b)
                .collect::<Vec<_>>()
        };
        let r1k = at(1_024);
        let min1 = r1k.iter().cloned().fold(f64::MAX, f64::min);
        let max1 = r1k.iter().cloned().fold(0.0, f64::max);
        assert!((2.5..5.5).contains(&min1), "1K min ratio {min1}");
        assert!((20.0..34.0).contains(&max1), "1K max ratio {max1}");
        let r1m = at(1_050_000);
        let min2 = r1m.iter().cloned().fold(f64::MAX, f64::min);
        let max2 = r1m.iter().cloned().fold(0.0, f64::max);
        assert!((11.0..21.0).contains(&min2), "1M min ratio {min2}");
        assert!((24.0..40.0).contains(&max2), "1M max ratio {max2}");
    }

    #[test]
    fn baldur_switching_share_from_gates() {
        // 1,024 nodes, m=4: 10 x 512 switches x 1,112 gates x 0.406 mW
        // = 2.31 kW total => ~2.26 W/node of TL switching.
        let b = NetworkPower::Baldur.per_node(1_024);
        assert!((b.switching_w - 2.26).abs() < 0.05, "{}", b.switching_w);
    }

    #[test]
    fn natural_sizes() {
        assert_eq!(NetworkPower::Baldur.natural_size(1_000), 1_024);
        assert_eq!(NetworkPower::Dragonfly.natural_size(1_000), 1_056);
        assert_eq!(NetworkPower::FatTree.natural_size(1_000), 1_024);
    }
}

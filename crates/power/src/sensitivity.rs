//! The Figure 9 sensitivity analysis: switch power scaled 0.5x / 2x.
//!
//! The paper's pessimistic case halves every *electrical* switch's power
//! while doubling the *optical* (TL) switch power; even then Baldur wins
//! by 5.1x / 8.2x / 14.7x against dragonfly / fat-tree / electrical MB at
//! the 1M-1.4M scale.

use serde::{Deserialize, Serialize};

use crate::networks::NetworkPower;

/// One sensitivity scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Multiplier on electrical switch (router-core) power.
    pub electrical_scale: f64,
    /// Multiplier on optical (TL) switch power.
    pub optical_scale: f64,
}

impl Scenario {
    /// Figure 8's numbers unchanged.
    pub const BASELINE: Scenario = Scenario {
        electrical_scale: 1.0,
        optical_scale: 1.0,
    };

    /// The paper's pessimistic (for Baldur) corner.
    pub const PESSIMISTIC: Scenario = Scenario {
        electrical_scale: 0.5,
        optical_scale: 2.0,
    };

    /// The paper's optimistic corner.
    pub const OPTIMISTIC: Scenario = Scenario {
        electrical_scale: 2.0,
        optical_scale: 0.5,
    };

    /// Per-node power of `n` at `scale` under this scenario. For the
    /// electrical networks the router *core* includes its buffering, so
    /// both shares scale; Baldur's buffer is the NIC-side retransmission
    /// SRAM, which is not a switch and stays fixed.
    pub fn per_node_w(&self, n: NetworkPower, scale: u64) -> f64 {
        let mut b = n.per_node(scale);
        match n {
            NetworkPower::Baldur => {
                b.switching_w *= self.optical_scale;
            }
            _ => {
                b.switching_w *= self.electrical_scale;
                b.buffers_w *= self.electrical_scale;
            }
        }
        b.total_w()
    }

    /// Baldur's improvement over `n` at `scale`.
    pub fn improvement(&self, n: NetworkPower, scale: u64) -> f64 {
        self.per_node_w(n, scale) / self.per_node_w(NetworkPower::Baldur, scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE_1M: u64 = 1_048_576;

    #[test]
    fn pessimistic_case_still_favors_baldur() {
        // Paper Fig. 9: 5.1x / 8.2x / 14.7x vs dragonfly / fat-tree / MB.
        let s = Scenario::PESSIMISTIC;
        let df = s.improvement(NetworkPower::Dragonfly, SCALE_1M);
        let ft = s.improvement(NetworkPower::FatTree, SCALE_1M);
        let mb = s.improvement(NetworkPower::ElectricalMultiButterfly, SCALE_1M);
        assert!((3.5..8.0).contains(&df), "dragonfly {df}");
        assert!((6.0..12.0).contains(&ft), "fat-tree {ft}");
        assert!((10.0..20.0).contains(&mb), "MB {mb}");
    }

    #[test]
    fn optimistic_case_widens_the_gap() {
        let base = Scenario::BASELINE.improvement(NetworkPower::FatTree, SCALE_1M);
        let opt = Scenario::OPTIMISTIC.improvement(NetworkPower::FatTree, SCALE_1M);
        let pess = Scenario::PESSIMISTIC.improvement(NetworkPower::FatTree, SCALE_1M);
        assert!(opt > base && base > pess, "{opt} > {base} > {pess}");
    }

    #[test]
    fn scaling_only_touches_switching() {
        let b = NetworkPower::FatTree.per_node(SCALE_1M);
        let scaled = b.with_switch_scale(0.5);
        assert_eq!(b.transceivers_w, scaled.transceivers_w);
        assert_eq!(b.serdes_w, scaled.serdes_w);
        assert!((scaled.switching_w - b.switching_w * 0.5).abs() < 1e-12);
    }
}

//! The Figure 8 scaling sweep: power per node from 1K to 1.4M servers.

use serde::{Deserialize, Serialize};

use crate::networks::{NetworkPower, PowerBreakdown};

/// One scale point of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Requested scale (lower edge of the paper's range label).
    pub requested: u64,
    /// Figure 8's range label, e.g. "1K-2K".
    pub label: String,
    /// Per-network `(actual nodes, breakdown)`.
    pub entries: Vec<(NetworkPower, u64, PowerBreakdown)>,
}

impl ScalePoint {
    /// Power per node of one network at this point.
    pub fn total_w(&self, n: NetworkPower) -> f64 {
        self.entries
            .iter()
            .find(|(k, _, _)| *k == n)
            .map(|(_, _, b)| b.total_w())
            .expect("network present")
    }

    /// Baldur's improvement factor over `n`.
    pub fn improvement(&self, n: NetworkPower) -> f64 {
        self.total_w(n) / self.total_w(NetworkPower::Baldur)
    }
}

/// The paper's Figure 8 x-axis.
pub fn paper_scales() -> Vec<(u64, String)> {
    vec![
        (1_024, "1K-2K".into()),
        (16_384, "16K-17K".into()),
        (131_072, "131K-263K".into()),
        (1_048_576, "1M-1.4M".into()),
    ]
}

/// Runs the sweep over the given scales (or [`paper_scales`]).
pub fn scaling_sweep(scales: &[(u64, String)]) -> Vec<ScalePoint> {
    scales
        .iter()
        .map(|(requested, label)| {
            let entries = NetworkPower::ALL
                .iter()
                .map(|&n| (n, n.natural_size(*requested), n.per_node(*requested)))
                .collect();
            ScalePoint {
                requested: *requested,
                label: label.clone(),
                entries,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_networks_at_all_scales() {
        let sweep = scaling_sweep(&paper_scales());
        assert_eq!(sweep.len(), 4);
        for p in &sweep {
            assert_eq!(p.entries.len(), 4);
            for (n, size, b) in &p.entries {
                assert!(*size >= p.requested, "{} at {}", n.name(), p.requested);
                assert!(b.total_w() > 0.0);
            }
        }
    }

    #[test]
    fn baldur_improvement_grows_with_scale_overall() {
        let sweep = scaling_sweep(&paper_scales());
        let first_min = NetworkPower::ALL[1..]
            .iter()
            .map(|&n| sweep[0].improvement(n))
            .fold(f64::MAX, f64::min);
        let last_min = NetworkPower::ALL[1..]
            .iter()
            .map(|&n| sweep[3].improvement(n))
            .fold(f64::MAX, f64::min);
        // Paper: min improvement rises from 3.2x at 1K to 14.6x at 1M.
        assert!(last_min > 2.5 * first_min, "{first_min} -> {last_min}");
    }

    #[test]
    fn dip_at_16k_from_multiplicity_bump() {
        // The paper notes Baldur's advantage dips slightly at 16K-17K
        // because multiplicity goes 4 -> 5 there.
        let sweep = scaling_sweep(&paper_scales());
        let b_1k = sweep[0].total_w(NetworkPower::Baldur);
        let b_16k = sweep[1].total_w(NetworkPower::Baldur);
        assert!(b_16k > b_1k, "multiplicity bump must cost power");
    }
}

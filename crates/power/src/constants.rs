//! Component power constants with their paper citations.

/// Cisco SFP28 optical transceiver module (paper ref \[58\]): watts.
pub const TRANSCEIVER_W: f64 = 1.5;

/// One 28 Gb/s SerDes lane in 32 nm SOI (paper ref \[59\]): watts.
pub const SERDES_W: f64 = 0.693;

/// A 1 MB SRAM retransmission buffer (paper ref \[60\]): watts. Only Baldur
/// pays this (per node, assuming hardware retransmission).
pub const RETX_BUFFER_W: f64 = 0.741;

/// TL gate static power (paper Table IV): milliwatts.
pub const TL_GATE_MW: f64 = 0.406;

/// Power cost of one *optical* link end: a transceiver plus its SerDes.
pub const OPTICAL_PORT_W: f64 = TRANSCEIVER_W + SERDES_W;

/// Power cost of one *electrical* (short, in-cabinet) link end: SerDes
/// only.
pub const ELECTRICAL_PORT_W: f64 = SERDES_W;

/// Peak power budget per cabinet (paper Sec. IV-G, Cray XC \[1\]): watts.
pub const CABINET_POWER_W: f64 = 85_000.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optical_port_sums_components() {
        assert!((OPTICAL_PORT_W - 2.193).abs() < 1e-12);
    }

    #[test]
    fn tl_gate_matches_table_iv() {
        assert!((TL_GATE_MW - baldur_tl::TlGate::PAPER.power_mw).abs() < 1e-12);
    }
}

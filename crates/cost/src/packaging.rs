//! Physical packaging of the Baldur network (paper Sec. IV-G).
//!
//! The network is a 2-D array of optical interposers, one multi-butterfly
//! stage per interposer column, on standard PCBs in standard cabinets.
//! Two constraints size the installation:
//!
//! * **fiber pitch** — every column boundary carries `N·m` fibers at
//!   127 µm pitch across interposer and PCB edges (this binds, as the
//!   paper observes),
//! * **power** — at most 85 kW per cabinet.

use serde::{Deserialize, Serialize};

use crate::components::{FIBER_PITCH_MM, INTERPOSER_MM, PCB_MM};

/// PCBs a cabinet can hold (42U-class rack of switch boards).
pub const PCBS_PER_CABINET: u32 = 30;

/// Packaging requirements for one Baldur installation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Packaging {
    /// Server nodes (power of two).
    pub nodes: u64,
    /// Path multiplicity.
    pub multiplicity: u32,
    /// Multi-butterfly stages.
    pub stages: u32,
    /// Total optical interposers.
    pub interposers: u64,
    /// Total PCBs.
    pub pcbs: u64,
    /// Cabinets under the fiber-pitch constraint.
    pub cabinets_fiber_limited: u64,
    /// Cabinets under the power-only constraint.
    pub cabinets_power_limited: u64,
    /// Fraction of interposer area used by TL gates.
    pub tl_area_fraction: f64,
}

impl Packaging {
    /// The binding constraint's cabinet count.
    pub fn cabinets(&self) -> u64 {
        self.cabinets_fiber_limited.max(self.cabinets_power_limited)
    }
}

/// Fibers that fit along one interposer's long edge.
pub fn fibers_per_interposer_edge() -> u64 {
    (INTERPOSER_MM.0 / FIBER_PITCH_MM) as u64
}

/// Fibers that fit along one PCB's long edge.
pub fn fibers_per_pcb_edge() -> u64 {
    (PCB_MM.0 / FIBER_PITCH_MM) as u64
}

/// Computes the packaging for a Baldur network of `nodes` servers
/// (rounded up to a power of two) at the scale's multiplicity.
pub fn packaging_for(nodes: u64) -> Packaging {
    let nodes = nodes.next_power_of_two().max(4);
    let stages = nodes.trailing_zeros();
    let m = baldur_power::multiplicity_for(nodes);
    let gates = u64::from(baldur_tl::gate_count::SwitchDesign::new(m).gates());

    // Fibers crossing each column boundary: every switch drives 2m fibers,
    // N/2 switches per stage => N*m fibers; stages+1 boundaries including
    // the node-facing first and last columns.
    let fibers_per_boundary = nodes * u64::from(m);
    let boundaries = u64::from(stages) + 1;
    let total_boundary_fibers = fibers_per_boundary * boundaries;

    // Interposers: each contributes one pitch-limited edge per boundary.
    let per_interposer = fibers_per_interposer_edge();
    let interposers_per_column = fibers_per_boundary.div_ceil(per_interposer);
    let interposers = interposers_per_column * u64::from(stages);

    // PCBs: the boundary fibers must also cross PCB edges.
    let pcbs = total_boundary_fibers.div_ceil(fibers_per_pcb_edge());
    let cabinets_fiber_limited = pcbs.div_ceil(u64::from(PCBS_PER_CABINET)).max(1);

    // Power-only bound.
    let per_node_w = baldur_power::NetworkPower::Baldur.per_node(nodes).total_w();
    let total_w = per_node_w * nodes as f64;
    let cabinets_power_limited = (total_w / baldur_power::constants::CABINET_POWER_W).ceil() as u64;

    // TL area share of the interposer budget.
    let switch_area_mm2 = gates as f64 * baldur_tl::TlGate::PAPER.area_um2 * 1e-6;
    let switches = u64::from(stages) * (nodes / 2);
    let tl_area = switch_area_mm2 * switches as f64;
    let interposer_area = INTERPOSER_MM.0 * INTERPOSER_MM.1 * interposers as f64;
    Packaging {
        nodes,
        multiplicity: m,
        stages,
        interposers,
        pcbs,
        cabinets_fiber_limited,
        cabinets_power_limited: cabinets_power_limited.max(1),
        tl_area_fraction: tl_area / interposer_area,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cabinet_at_1k_nodes() {
        let p = packaging_for(1_024);
        assert_eq!(p.cabinets(), 1, "{p:?}");
    }

    #[test]
    fn about_750_cabinets_at_1m_nodes() {
        let p = packaging_for(1 << 20);
        // Paper: 752 cabinets at the 1M scale, fiber pitch binding.
        let c = p.cabinets();
        assert!((700..=820).contains(&c), "{c}");
        assert!(
            p.cabinets_fiber_limited > p.cabinets_power_limited,
            "fiber pitch must be the binding constraint: {p:?}"
        );
    }

    #[test]
    fn power_only_bound_matches_paper_order() {
        // Paper: if 85 kW/cabinet were the only constraint, ~176 cabinets
        // would suffice at the 1M scale.
        let p = packaging_for(1 << 20);
        assert!(
            (120..=230).contains(&p.cabinets_power_limited),
            "{}",
            p.cabinets_power_limited
        );
    }

    #[test]
    fn tl_gates_use_under_10_percent_of_interposer_area() {
        // Paper Sec. IV-G: <10% for a 1,024-node network at m=4.
        let p = packaging_for(1_024);
        assert!(p.tl_area_fraction < 0.10, "{}", p.tl_area_fraction);
        assert!(p.tl_area_fraction > 0.0);
    }

    #[test]
    fn pitch_arithmetic() {
        assert_eq!(fibers_per_interposer_edge(), 251);
        assert_eq!(fibers_per_pcb_edge(), 4_800);
    }
}

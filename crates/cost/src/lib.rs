//! Cost and packaging models for Baldur (paper Sec. IV-G and VI-B).
//!
//! * [`components`] — unit prices for fibers, fiber array units (FAUs),
//!   rack-mount fiber enclosures/cassettes (RFECs), optical interposers
//!   (pessimistically 5x the cost of CMOS for the same area), and
//!   transceivers, following the cost-model style of Helios/OSA
//!   (paper refs \[2\], \[63\]),
//! * [`model`] — the Figure 10 cost-per-node sweep with component
//!   breakdown, plus the fat-tree and OCS comparison anchors,
//! * [`packaging`] — interposer/PCB/cabinet counts under the fiber-pitch
//!   (127 µm) and 85 kW-per-cabinet constraints; reproduces "1 cabinet at
//!   1K nodes, ~750 at 1M, fiber pitch binding".

pub mod components;
pub mod model;
pub mod packaging;

pub use model::{cost_per_node, CostBreakdown};
pub use packaging::{packaging_for, Packaging};

//! Unit prices and physical constants for the cost/packaging models.
//!
//! Absolute prices follow the conventions of the hybrid-network cost
//! models the paper cites (\[2\], \[63\]); the interposer price implements the
//! paper's explicitly pessimistic assumption that optical interposers
//! (TL chips + passives, hybrid-integrated) cost 5x as much as CMOS for
//! the same area.

/// Interposer dimensions (paper Sec. IV-G): millimetres.
pub const INTERPOSER_MM: (f64, f64) = (32.0, 10.0);

/// PCB dimensions (standard board, paper Sec. IV-G): millimetres.
pub const PCB_MM: (f64, f64) = (609.6, 457.2);

/// Fiber array unit pitch (Corning FAU datasheet \[50\]): millimetres.
pub const FIBER_PITCH_MM: f64 = 0.127;

/// Assumed CMOS manufacturing cost per mm² at the relevant node, USD.
/// (High-end logic with interposer-class yields; the absolute level is
/// calibrated so the 1K-scale Baldur cost lands at the paper's ~523
/// USD/node, with interposers dominating.)
pub const CMOS_COST_PER_MM2: f64 = 1.40;

/// The paper's pessimistic interposer premium over CMOS.
pub const INTERPOSER_COST_FACTOR: f64 = 5.0;

/// One optical interposer (32 mm × 10 mm), USD.
pub fn interposer_cost() -> f64 {
    INTERPOSER_MM.0 * INTERPOSER_MM.1 * CMOS_COST_PER_MM2 * INTERPOSER_COST_FACTOR
}

/// One terminated fiber with LC connector, USD.
pub const FIBER_COST: f64 = 6.0;

/// One fiber array unit position (per-fiber amortized), USD.
pub const FAU_COST_PER_FIBER: f64 = 1.5;

/// Rack-mount fiber enclosure and cassettes, per node fiber, USD.
pub const RFEC_COST_PER_FIBER: f64 = 3.0;

/// One SFP28-class optical transceiver, USD.
pub const TRANSCEIVER_COST: f64 = 60.0;

/// Cost anchors from the literature for the comparison rows of Figure 10:
/// a 2,560-node fat-tree (refs \[17\], \[63\]), USD per node.
pub const FATTREE_2560_COST_PER_NODE: f64 = 1_992.0;

/// An OCS-based network at a few thousand nodes (ref \[63\]), USD per node.
pub const OCS_COST_PER_NODE: f64 = 1_719.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interposer_is_5x_cmos() {
        let area = INTERPOSER_MM.0 * INTERPOSER_MM.1;
        assert!((interposer_cost() - area * CMOS_COST_PER_MM2 * 5.0).abs() < 1e-9);
        assert!((interposer_cost() - 2_240.0).abs() < 1.0);
    }
}

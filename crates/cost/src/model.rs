//! The Figure 10 cost model: USD per server node, by component.

use serde::{Deserialize, Serialize};

use crate::components::{
    interposer_cost, FAU_COST_PER_FIBER, FIBER_COST, RFEC_COST_PER_FIBER, TRANSCEIVER_COST,
};
use crate::packaging::packaging_for;

/// Per-node cost decomposition, USD.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Optical interposers (TL chips + passives).
    pub interposers: f64,
    /// Node fibers with connectors.
    pub fibers: f64,
    /// Fiber array units (all boundary fibers).
    pub faus: f64,
    /// Rack-mount fiber enclosures and cassettes.
    pub rfecs: f64,
    /// Node transceivers.
    pub transceivers: f64,
}

impl CostBreakdown {
    /// Total USD per node.
    pub fn total(&self) -> f64 {
        self.interposers + self.fibers + self.faus + self.rfecs + self.transceivers
    }

    /// The dominant component's name (the paper: interposers dominate).
    pub fn dominant(&self) -> &'static str {
        let items = [
            (self.interposers, "interposers"),
            (self.fibers, "fibers"),
            (self.faus, "faus"),
            (self.rfecs, "rfecs"),
            (self.transceivers, "transceivers"),
        ];
        items
            .iter()
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .map_or("none", |item| item.1)
    }
}

/// Cost per node of a Baldur network with (at least) `nodes` servers.
pub fn cost_per_node(nodes: u64) -> CostBreakdown {
    let p = packaging_for(nodes);
    let n = p.nodes as f64;
    // Node fibers: one TX + one RX per server (one duplex transceiver).
    let node_fibers = 2.0;
    let node_transceivers = 1.0;
    // Boundary fibers inside the fabric, per node.
    let boundary_fibers_per_node = f64::from(p.stages + 1) * f64::from(p.multiplicity);
    CostBreakdown {
        interposers: p.interposers as f64 * interposer_cost() / n,
        fibers: node_fibers * FIBER_COST,
        faus: boundary_fibers_per_node * FAU_COST_PER_FIBER,
        rfecs: node_fibers * RFEC_COST_PER_FIBER,
        transceivers: node_transceivers * TRANSCEIVER_COST,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{FATTREE_2560_COST_PER_NODE, OCS_COST_PER_NODE};

    #[test]
    fn about_523_usd_per_node_at_1k() {
        let c = cost_per_node(1_024);
        assert!(
            (c.total() / 523.0 - 1.0).abs() < 0.15,
            "total {}",
            c.total()
        );
    }

    #[test]
    fn interposers_dominate() {
        for scale in [1_024u64, 16_384, 1 << 20] {
            let c = cost_per_node(scale);
            assert_eq!(c.dominant(), "interposers", "at {scale}: {c:?}");
            assert!(c.interposers > 0.5 * c.total());
        }
    }

    #[test]
    fn cheaper_than_fattree_and_ocs_anchors() {
        let c = cost_per_node(2_048).total();
        assert!(c < FATTREE_2560_COST_PER_NODE / 2.0, "{c}");
        assert!(c < OCS_COST_PER_NODE / 2.0, "{c}");
    }

    #[test]
    fn growth_with_scale_is_bounded() {
        // The stage count grows log-linearly, so per-node hardware grows;
        // the paper reports a slight increase — ours stays within ~2.6x
        // from 1K to 1M (see EXPERIMENTS.md for the discussion).
        let lo = cost_per_node(1_024).total();
        let hi = cost_per_node(1 << 20).total();
        assert!(hi > lo, "more stages cannot be free");
        assert!(hi / lo < 3.0, "{lo} -> {hi}");
    }
}

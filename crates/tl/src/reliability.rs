//! Timing-jitter reliability analysis (paper Sec. IV-F).
//!
//! The paper's model: with 10% gate-delay variation and 1 ps waveguide
//! variation, the switch tolerates a 0.42T shift (in either direction) of
//! any routing-bit edge. Jitter at each transition is Gaussian with µ = 0
//! and σ² = 1.53 ps². The probability that a single transition jumps the
//! margin is then the Gaussian tail beyond 0.42T — about 10⁻⁹ (the error
//! scenarios listed in the paper are all single-edge-escapes of this
//! margin).

use serde::{Deserialize, Serialize};

use baldur_sim::rng::StreamRng;

/// Bit period T in picoseconds at 60 Gbps.
pub const BIT_PERIOD_PS: f64 = 1_000.0 / 60.0;

/// The jitter/margin model of Sec. IV-F.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitterModel {
    /// Jitter variance per transition, ps².
    pub variance_ps2: f64,
    /// Tolerated edge displacement, as a fraction of T.
    pub margin_t: f64,
}

impl JitterModel {
    /// The paper's parameters: σ² = 1.53 ps², margin 0.42T.
    pub fn paper() -> Self {
        JitterModel {
            variance_ps2: 1.53,
            margin_t: 0.42,
        }
    }

    /// Jitter standard deviation in ps.
    pub fn sigma_ps(&self) -> f64 {
        self.variance_ps2.sqrt()
    }

    /// The margin in ps.
    pub fn margin_ps(&self) -> f64 {
        self.margin_t * BIT_PERIOD_PS
    }

    /// The margin expressed in jitter standard deviations.
    pub fn margin_sigmas(&self) -> f64 {
        self.margin_ps() / self.sigma_ps()
    }

    /// Analytic probability that one transition escapes the margin in the
    /// harmful direction (single-sided tail).
    pub fn error_probability(&self) -> f64 {
        normal_tail(self.margin_sigmas())
    }

    /// Monte Carlo estimate of the probability that a transition's jitter
    /// exceeds `threshold_sigmas`, for validating [`normal_tail`] at
    /// resolvable levels.
    pub fn monte_carlo_exceedance(&self, threshold_sigmas: f64, samples: u64, seed: u64) -> f64 {
        let mut rng = StreamRng::named(seed, "jittermc", 0);
        let mut exceed = 0u64;
        for _ in 0..samples {
            let j = rng.gen_normal(0.0, 1.0);
            if j > threshold_sigmas {
                exceed += 1;
            }
        }
        exceed as f64 / samples as f64
    }
}

impl Default for JitterModel {
    fn default() -> Self {
        JitterModel::paper()
    }
}

/// Upper-tail probability `P(Z > x)` of the standard normal distribution.
///
/// Uses the Abramowitz–Stegun rational approximation for small `x` and the
/// asymptotic continued-fraction expansion for the deep tail, where the
/// rational approximation's absolute error would swamp the value.
pub fn normal_tail(x: f64) -> f64 {
    if x < 0.0 {
        return 1.0 - normal_tail(-x);
    }
    let phi = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    if x > 4.0 {
        // Asymptotic series: Q(x) = phi(x)/x * (1 - 1/x^2 + 3/x^4 - 15/x^6).
        let x2 = x * x;
        return phi / x * (1.0 - 1.0 / x2 + 3.0 / (x2 * x2) - 15.0 / (x2 * x2 * x2));
    }
    // Zelen & Severo 26.2.17.
    let t = 1.0 / (1.0 + 0.2316419 * x);
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    phi * poly
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_margin_is_about_5_7_sigma() {
        let m = JitterModel::paper();
        assert!((m.sigma_ps() - 1.2369).abs() < 1e-3);
        assert!((m.margin_ps() - 7.0).abs() < 0.01);
        assert!((m.margin_sigmas() - 5.66).abs() < 0.01);
    }

    #[test]
    fn error_probability_is_order_1e_minus_9() {
        let p = JitterModel::paper().error_probability();
        // The paper quotes "a low error probability of 1e-9"; the exact
        // Gaussian tail at 5.66 sigma is ~7.5e-9.
        assert!(p > 1e-10 && p < 1e-8, "P = {p:e}");
    }

    #[test]
    fn normal_tail_known_values() {
        assert!((normal_tail(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_tail(1.0) - 0.158_655).abs() < 1e-5);
        assert!((normal_tail(2.0) - 0.022_750).abs() < 1e-5);
        assert!((normal_tail(3.0) - 1.349_9e-3).abs() < 1e-6);
        // Deep-tail reference values (Q function): Q(5) = 2.8665e-7.
        assert!((normal_tail(5.0) / 2.866_5e-7 - 1.0).abs() < 1e-3);
        assert!((normal_tail(6.0) / 9.865_9e-10 - 1.0).abs() < 1e-3);
    }

    #[test]
    fn normal_tail_is_symmetric() {
        for x in [0.3, 1.7, 3.9] {
            assert!((normal_tail(x) + normal_tail(-x) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn monte_carlo_matches_analytic_at_resolvable_levels() {
        let m = JitterModel::paper();
        for &(thr, tol) in &[(1.0f64, 0.02), (2.0, 0.05), (3.0, 0.2)] {
            let mc = m.monte_carlo_exceedance(thr, 400_000, 7);
            let an = normal_tail(thr);
            assert!(
                (mc / an - 1.0).abs() < tol,
                "thr {thr}: mc {mc:e} vs analytic {an:e}"
            );
        }
    }
}

//! Gate-count and latency model per path multiplicity (paper Table V).
//!
//! The paper reports measured netlist sizes and HSPICE latencies for
//! multiplicity m ∈ 1..=5. Those exact values are used verbatim (they come
//! from the authors' actual designs); for other m a structural estimate is
//! provided: the fabric needs `4m²` path ANDs plus per-input mask ANDs, the
//! header unit replicates detectors/latches per input (2m inputs) with `m`
//! valid latches each, and each of the 2m output ports carries an arbiter
//! slice. The estimate is tested to track the paper values within 15%.

use serde::{Deserialize, Serialize};

/// Paper Table V, indexed by multiplicity − 1.
pub const TABLE_V_GATES: [u32; 5] = [64, 300, 642, 1_112, 1_710];

/// Paper Table V switch latency (ns), indexed by multiplicity − 1.
pub const TABLE_V_LATENCY_NS: [f64; 5] = [0.14, 0.49, 0.94, 1.5, 2.25];

/// Paper Table V packet drop rate (%) for a 1,024-node network running
/// transpose at 0.7 load, indexed by multiplicity − 1.
pub const TABLE_V_DROP_PCT: [f64; 5] = [65.3, 21.5, 3.2, 0.3, 0.02];

/// A switch design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchDesign {
    /// Path multiplicity m (the switch has 2m inputs and 2m outputs).
    pub multiplicity: u32,
}

impl SwitchDesign {
    /// A design with the given multiplicity.
    ///
    /// # Panics
    ///
    /// Panics if `multiplicity` is zero.
    pub fn new(multiplicity: u32) -> Self {
        assert!(multiplicity > 0, "multiplicity must be at least 1");
        SwitchDesign { multiplicity }
    }

    /// TL gates per switch: Table V for m ∈ 1..=5, structural estimate
    /// beyond.
    pub fn gates(&self) -> u32 {
        let m = self.multiplicity;
        if (1..=5).contains(&m) {
            TABLE_V_GATES[(m - 1) as usize]
        } else {
            Self::structural_estimate(m)
        }
    }

    /// The gate-count estimate for multiplicities beyond Table V: a
    /// quadratic in m fitted through the paper's m = 1..3 points
    /// (`53m² + 77m − 66`). The m² term reflects the fabric path ANDs and
    /// cross-path arbitration (each of the 2m inputs can reach each of the
    /// 2m output ports); the linear term covers per-input detectors and
    /// latches. The fit tracks the paper's m = 4, 5 netlists within 4%.
    pub fn structural_estimate(m: u32) -> u32 {
        let m = m as i64;
        (53 * m * m + 77 * m - 66) as u32
    }

    /// Switch latency in nanoseconds: Table V for m ∈ 1..=5; beyond that a
    /// quadratic fit (sequential arbitration over m paths dominates).
    pub fn latency_ns(&self) -> f64 {
        let m = self.multiplicity;
        if (1..=5).contains(&m) {
            TABLE_V_LATENCY_NS[(m - 1) as usize]
        } else {
            // Fit through the Table V tail: ~0.09 m^2.
            0.09 * (m as f64).powi(2)
        }
    }

    /// Switch power in watts: gates × the TL gate power.
    pub fn power_w(&self, gate_power_mw: f64) -> f64 {
        self.gates() as f64 * gate_power_mw * 1e-3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::TlGate;

    #[test]
    fn table_v_values_are_served() {
        for m in 1..=5u32 {
            let d = SwitchDesign::new(m);
            assert_eq!(d.gates(), TABLE_V_GATES[(m - 1) as usize]);
            assert_eq!(d.latency_ns(), TABLE_V_LATENCY_NS[(m - 1) as usize]);
        }
    }

    #[test]
    fn structural_estimate_tracks_paper_within_15_percent() {
        for m in 2..=5u32 {
            let est = SwitchDesign::structural_estimate(m) as f64;
            let paper = TABLE_V_GATES[(m - 1) as usize] as f64;
            let err = (est / paper - 1.0).abs();
            assert!(err < 0.15, "m={m}: estimate {est} vs paper {paper}");
        }
    }

    #[test]
    fn m4_switch_power_is_under_half_watt() {
        // 1,112 gates x 0.406 mW = 0.4515 W: the number behind the "96.6X
        // less power than a 2x2 electrical switch" claim.
        let p = SwitchDesign::new(4).power_w(TlGate::PAPER.power_mw);
        assert!((p - 0.4515).abs() < 1e-3, "{p}");
    }

    #[test]
    fn extrapolation_is_monotonic() {
        let mut last = 0;
        for m in 1..=10 {
            let g = SwitchDesign::new(m).gates();
            assert!(g > last, "m={m}");
            last = g;
        }
    }

    #[test]
    #[should_panic(expected = "multiplicity")]
    fn zero_multiplicity_rejected() {
        SwitchDesign::new(0);
    }
}

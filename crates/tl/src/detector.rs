//! The line activity detector (paper Fig. 4(b)).
//!
//! Three jobs, all clock-less:
//!
//! 1. **Packet envelope** — the input is split into `n = 15` waveguide
//!    delay taps spaced `delta = 0.4T` apart and recombined; because
//!    8b/10b payload never goes dark for more than 5T, the combiner output
//!    rises at the first light and holds until 6T after the last light.
//! 2. **Start/end pulses** — comparing the envelope with a 0.5T-delayed
//!    copy yields a pulse on each envelope edge.
//! 3. **First-bit sampling** — the input delayed by the data-path
//!    waveguide is sampled in a narrow window just after the input's
//!    falling edge; a high sample means the pulse was ≥ the decision
//!    boundary (≈1.5T), i.e. a logic "0" (2T). The window is generated
//!    from the input itself, so the mechanism needs no clock.
//!
//! The paper quotes θ = 1.3T for the sampling delay of *their*
//! HSPICE-level element; in this gate-level model the window-generation
//! path contributes ~0.4T of additional gate delay, so the data-path
//! waveguide defaults to ~1.74T to place the *net* decision boundary at
//! 1.5T — midway between the 1T and 2T symbols, which is what gives the
//! symmetric ±0.42T timing margin of Sec. IV-F.

use baldur_phy::waveform::{Fs, BIT_PERIOD_FS};

use crate::netlist::{Netlist, WireId};

/// Geometry of the detector, in femtoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorParams {
    /// Number of envelope delay taps (paper: 15).
    pub taps: u32,
    /// Tap spacing delta (paper: 0.4T).
    pub delta: Fs,
    /// Envelope edge-detection delay (paper: 0.5T).
    pub edge_delay: Fs,
    /// Data-path waveguide delay for first-bit sampling.
    pub data_delay: Fs,
    /// Sampling-window length determinant (window ≈ [fall+2g, fall+win+g]).
    pub window: Fs,
}

impl DetectorParams {
    /// The paper's geometry at 60 Gbps (T = 16,667 fs), with the data
    /// delay sized to put the decision boundary at 1.5T (see module docs).
    pub fn paper() -> Self {
        let t = BIT_PERIOD_FS;
        DetectorParams {
            taps: 15,
            delta: 2 * t / 5,   // 0.4T
            edge_delay: t / 2,  // 0.5T
            data_delay: 29_000, // ≈1.74T; net boundary ≈ 1.5T
            window: 4_300,      // ≈0.26T raw; effective width ≈ 0.14T
        }
    }

    /// Envelope hold time after the last light: `taps * delta` (6T).
    pub fn hold(&self) -> Fs {
        self.taps as Fs * self.delta
    }
}

impl Default for DetectorParams {
    fn default() -> Self {
        DetectorParams::paper()
    }
}

/// Output wires of one line activity detector.
#[derive(Debug, Clone, Copy)]
pub struct Detector {
    /// High from first light until 6T after the last light.
    pub envelope: WireId,
    /// One ~0.5T pulse at packet start.
    pub start_pulse: WireId,
    /// One ~0.5T pulse at packet end (6T after last light).
    pub end_pulse: WireId,
    /// The input delayed by the data-path waveguide (first-bit sample data).
    pub data_delayed: WireId,
    /// Narrow window pulse after every falling edge of the input (first-bit
    /// sample enable, to be gated by "not yet valid").
    pub fall_window: WireId,
}

/// Builds a line activity detector reading `input`.
pub fn line_activity_detector(n: &mut Netlist, input: WireId, p: DetectorParams) -> Detector {
    assert!(p.taps > 0 && p.delta > 0, "detector needs taps");
    // 1. Envelope: input OR its delayed copies.
    let mut taps = Vec::with_capacity(p.taps as usize + 1);
    taps.push(input);
    for k in 1..=p.taps {
        taps.push(n.waveguide(input, k as Fs * p.delta));
    }
    let envelope = n.combiner(&taps);

    // 2. Edge pulses.
    let env_d = n.waveguide(envelope, p.edge_delay);
    let env_d_not = n.not(env_d);
    let start_pulse = n.and2(envelope, env_d_not);
    let env_not = n.not(envelope);
    let end_pulse = n.and2(env_not, env_d);

    // 3. First-bit sampling primitives.
    let data_delayed = n.waveguide(input, p.data_delay);
    let in_not = n.not(input);
    let in_win = n.waveguide(input, p.window);
    let fall_window = n.and2(in_not, in_win);

    Detector {
        envelope,
        start_pulse,
        end_pulse,
        data_delayed,
        fall_window,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{CircuitSim, RunOutcome};
    use baldur_phy::length_code::LengthCode;
    use baldur_phy::packet_wave::assemble;
    use baldur_phy::waveform::Waveform;

    const T: u64 = 16_667;

    fn rig(wave: &Waveform) -> (CircuitSim, Detector) {
        let mut n = Netlist::new();
        let input = n.wire();
        let d = line_activity_detector(&mut n, input, DetectorParams::paper());
        let mut sim = CircuitSim::new(n);
        for w in [d.envelope, d.start_pulse, d.end_pulse, d.fall_window] {
            sim.probe(w);
        }
        sim.drive(input, wave);
        let out = sim.run(4_000 * T);
        assert!(matches!(out, RunOutcome::Settled { .. }));
        (sim, d)
    }

    #[test]
    fn envelope_covers_packet_and_holds_6t() {
        let code = LengthCode::paper();
        let pw = assemble(&code, &[false, true, false], b"payload", 10 * T);
        let (sim, d) = rig(&pw.wave);
        let env = sim.probed(d.envelope);
        // Exactly one rise and one fall: the envelope never drops inside
        // the packet.
        assert_eq!(env.transitions().len(), 2, "{:?}", env.transitions());
        let rise = env.transitions()[0];
        let fall = env.transitions()[1];
        assert!((10 * T..10 * T + T / 2).contains(&rise), "rise {rise}");
        let expected_fall = pw.end + DetectorParams::paper().hold();
        assert!(
            fall.abs_diff(expected_fall) < T / 2,
            "fall {fall} vs {expected_fall}"
        );
    }

    #[test]
    fn one_start_and_one_end_pulse_per_packet() {
        let code = LengthCode::paper();
        let pw = assemble(&code, &[true, false], b"some packet data", 8 * T);
        let (sim, d) = rig(&pw.wave);
        let start = sim.probed(d.start_pulse);
        let end = sim.probed(d.end_pulse);
        assert_eq!(start.transitions().len(), 2, "{:?}", start.transitions());
        assert_eq!(end.transitions().len(), 2, "{:?}", end.transitions());
        assert!(start.transitions()[0] < end.transitions()[0]);
    }

    #[test]
    fn two_packets_give_two_start_pulses() {
        let code = LengthCode::paper();
        let p1 = assemble(&code, &[true], b"aa", 5 * T);
        // Second packet starts well after the 6T hold expires.
        let p2 = assemble(&code, &[false], b"bb", p1.end + 20 * T);
        let mut transitions: Vec<u64> = p1
            .wave
            .transitions()
            .iter()
            .chain(p2.wave.transitions())
            .copied()
            .collect();
        transitions.sort_unstable();
        let wave = Waveform::from_transitions(transitions);
        let (sim, d) = rig(&wave);
        assert_eq!(sim.probed(d.start_pulse).transitions().len(), 4);
        assert_eq!(sim.probed(d.end_pulse).transitions().len(), 4);
    }

    #[test]
    fn fall_window_fires_after_each_falling_edge() {
        let code = LengthCode::paper();
        let w = code.encode(&[false, true], 5 * T); // falls at 7T and 9T... (slots)
        let (sim, d) = rig(&w);
        let fw = sim.probed(d.fall_window);
        // Two pulses, one per encoded bit's falling edge.
        assert_eq!(fw.transitions().len(), 4, "{:?}", fw.transitions());
    }

    /// Empirically locates the first-bit decision boundary by sweeping the
    /// first pulse length, emulating the sample-and-hold with a latch.
    #[test]
    fn decision_boundary_is_near_1_5t() {
        use crate::latch::sr_latch;
        let mut boundary = None;
        let mut prev = None;
        for len_centi_t in (90..=200).step_by(2) {
            let len = len_centi_t as u64 * T / 100;
            let mut n = Netlist::new();
            let input = n.wire();
            let d = line_activity_detector(&mut n, input, DetectorParams::paper());
            let s = n.and2(d.fall_window, d.data_delayed);
            let r = n.wire();
            let l = sr_latch(&mut n, s, r);
            let mut sim = CircuitSim::new(n);
            sim.drive(input, &Waveform::from_pulses([(5 * T, 5 * T + len)]));
            assert!(matches!(sim.run(1_000 * T), RunOutcome::Settled { .. }));
            let latched = sim.level(l.q);
            if let Some(p) = prev {
                if p != latched {
                    boundary = Some(len_centi_t);
                }
            }
            prev = Some(latched);
        }
        let b = boundary.expect("no decision boundary found");
        // 1.5T +- 0.08T: symmetric margins of at least 0.42T on both the
        // 1T and 2T symbols, matching Sec. IV-F.
        assert!((142..=158).contains(&b), "boundary at {b} centi-T");
    }
}

//! Gate-level netlists and the event-driven circuit simulator.
//!
//! Components come in two delay flavours, matching their physics:
//!
//! * **Inertial** TL gates (NOT/AND/OR/NAND/NOR): a gate re-evaluates on
//!   every input edge and keeps a single pending output transition; a
//!   re-evaluation that contradicts the pending transition cancels it.
//!   This filters pulses shorter than the gate delay — the discrete
//!   analogue of the 7.3 ps optical rise/fall time — and is what lets
//!   feedback structures (latches, the arbiter) settle instead of
//!   oscillating.
//! * **Transport** passive elements (waveguide delays, optical combiners):
//!   every input edge propagates, delayed; nothing is filtered, so a
//!   multi-gigabit packet survives a 132 ps waveguide delay intact.
//!
//! Time is in femtoseconds: the kernel's [`Time`] tick is reinterpreted as
//! 1 fs here so that the 60 Gbps bit period (16,667 fs) and the 1.93 ps
//! gate delay (1,930 fs) are both exact.
//!
//! Feedback (latches, arbiters) is expressed by creating a wire first and
//! later attaching a gate that drives it via [`Netlist::gate_into`].

use std::collections::BTreeMap;

use baldur_phy::waveform::{Fs, Waveform};
use baldur_sim::{Model, Scheduler, Simulation, Time};

use crate::device::TlGate;

/// Identifies a wire (an optical waveguide segment) in a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WireId(pub u32);

/// Identifies a component in a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompId(pub u32);

/// Logic function of an inertial TL gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateKind {
    /// One-input inverter.
    Not,
    /// Two-input AND.
    And2,
    /// Two-input OR.
    Or2,
    /// Two-input NAND.
    Nand2,
    /// Two-input NOR.
    Nor2,
}

impl GateKind {
    fn eval(self, a: bool, b: bool) -> bool {
        match self {
            GateKind::Not => !a,
            GateKind::And2 => a && b,
            GateKind::Or2 => a || b,
            GateKind::Nand2 => !(a && b),
            GateKind::Nor2 => !(a || b),
        }
    }
}

#[derive(Debug, Clone)]
enum Component {
    Gate {
        kind: GateKind,
        a: WireId,
        b: Option<WireId>,
        out: WireId,
        delay: Fs,
    },
    /// Transport OR over the inputs: 1 input = waveguide delay, k inputs =
    /// passive combiner.
    Transport {
        inputs: Vec<WireId>,
        out: WireId,
        delay: Fs,
    },
}

impl Component {
    fn out(&self) -> WireId {
        match self {
            Component::Gate { out, .. } | Component::Transport { out, .. } => *out,
        }
    }
}

/// A circuit under construction.
///
/// Optical splitters need no explicit component: a wire may fan out to any
/// number of component inputs (signal restoration is a TL gate property, so
/// fanout limits are a layout concern the gate-count model accounts for
/// separately).
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    initial: Vec<bool>,
    names: Vec<Option<String>>,
    comps: Vec<Component>,
    driven: Vec<bool>,
    gate_delay: Fs,
    tl_gate_count: u32,
}

impl Netlist {
    /// An empty netlist using the paper's Table IV gate delay.
    pub fn new() -> Self {
        Netlist {
            initial: Vec::new(),
            names: Vec::new(),
            comps: Vec::new(),
            driven: Vec::new(),
            gate_delay: TlGate::PAPER.delay_fs(),
            tl_gate_count: 0,
        }
    }

    /// Overrides the default gate delay (timing-margin experiments).
    ///
    /// # Panics
    ///
    /// Panics if `delay` is zero.
    pub fn set_gate_delay(&mut self, delay: Fs) -> &mut Self {
        assert!(delay > 0, "gate delay must be positive");
        self.gate_delay = delay;
        self
    }

    /// The default gate delay in femtoseconds.
    pub fn gate_delay(&self) -> Fs {
        self.gate_delay
    }

    /// Number of TL gates instantiated so far (for Table V cross-checks).
    pub fn tl_gate_count(&self) -> u32 {
        self.tl_gate_count
    }

    /// Number of wires.
    pub fn wire_count(&self) -> usize {
        self.initial.len()
    }

    /// Creates a dark wire.
    pub fn wire(&mut self) -> WireId {
        self.wire_with(false)
    }

    /// Creates a wire with an explicit initial level (latch complements
    /// start high).
    pub fn wire_with(&mut self, initial: bool) -> WireId {
        let id = WireId(self.initial.len() as u32);
        self.initial.push(initial);
        self.names.push(None);
        self.driven.push(false);
        id
    }

    /// Attaches a display name to a wire (used by probes and VCD export).
    pub fn name_wire(&mut self, wire: WireId, name: &str) {
        self.names[wire.0 as usize] = Some(name.to_string());
    }

    /// The name of a wire, if any.
    pub fn wire_name(&self, wire: WireId) -> Option<&str> {
        self.names[wire.0 as usize].as_deref()
    }

    fn mark_driven(&mut self, out: WireId) {
        let idx = out.0 as usize;
        assert!(!self.driven[idx], "wire {idx} already has a driver");
        self.driven[idx] = true;
    }

    /// Attaches an inertial gate driving the existing wire `out`.
    /// This is how feedback loops (latches, mutexes) are closed.
    ///
    /// # Panics
    ///
    /// Panics if `out` already has a driver, if the delay is zero, or if
    /// the input arity does not match the gate kind.
    pub fn gate_into(
        &mut self,
        kind: GateKind,
        a: WireId,
        b: Option<WireId>,
        out: WireId,
        delay: Fs,
    ) {
        assert!(delay > 0, "gate delay must be positive");
        assert_eq!(
            matches!(kind, GateKind::Not),
            b.is_none(),
            "NOT takes one input, others take two"
        );
        self.mark_driven(out);
        self.comps.push(Component::Gate {
            kind,
            a,
            b,
            out,
            delay,
        });
        self.tl_gate_count += 1;
    }

    /// Adds an inertial gate with an explicit delay, returning a fresh
    /// output wire initialized consistently with the inputs' initial
    /// levels.
    pub fn gate_with_delay(
        &mut self,
        kind: GateKind,
        a: WireId,
        b: Option<WireId>,
        delay: Fs,
    ) -> WireId {
        let ia = self.initial[a.0 as usize];
        let ib = b.map(|w| self.initial[w.0 as usize]).unwrap_or(false);
        let out = self.wire_with(kind.eval(ia, ib));
        self.gate_into(kind, a, b, out, delay);
        out
    }

    /// Adds an inertial gate with the default delay.
    pub fn gate(&mut self, kind: GateKind, a: WireId, b: Option<WireId>) -> WireId {
        self.gate_with_delay(kind, a, b, self.gate_delay)
    }

    /// Inverter.
    pub fn not(&mut self, a: WireId) -> WireId {
        self.gate(GateKind::Not, a, None)
    }

    /// Two-input AND.
    pub fn and2(&mut self, a: WireId, b: WireId) -> WireId {
        self.gate(GateKind::And2, a, Some(b))
    }

    /// Three-input AND as a two-gate cascade (the paper limits TL gates to
    /// two optical inputs).
    pub fn and3(&mut self, a: WireId, b: WireId, c: WireId) -> WireId {
        let ab = self.and2(a, b);
        self.and2(ab, c)
    }

    /// Two-input OR.
    pub fn or2(&mut self, a: WireId, b: WireId) -> WireId {
        self.gate(GateKind::Or2, a, Some(b))
    }

    /// Two-input NOR.
    pub fn nor2(&mut self, a: WireId, b: WireId) -> WireId {
        self.gate(GateKind::Nor2, a, Some(b))
    }

    /// Two-input NAND.
    pub fn nand2(&mut self, a: WireId, b: WireId) -> WireId {
        self.gate(GateKind::Nand2, a, Some(b))
    }

    /// Passive waveguide delay element (transport semantics).
    ///
    /// # Panics
    ///
    /// Panics if `delay` is zero.
    pub fn waveguide(&mut self, input: WireId, delay: Fs) -> WireId {
        assert!(delay > 0, "waveguide delay must be positive");
        let init = self.initial[input.0 as usize];
        let out = self.wire_with(init);
        self.mark_driven(out);
        self.comps.push(Component::Transport {
            inputs: vec![input],
            out,
            delay,
        });
        out
    }

    /// Passive optical combiner: transport OR of `inputs` with negligible
    /// (1 fs) delay.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn combiner(&mut self, inputs: &[WireId]) -> WireId {
        assert!(!inputs.is_empty(), "combiner needs inputs");
        let init = inputs.iter().any(|w| self.initial[w.0 as usize]);
        let out = self.wire_with(init);
        self.mark_driven(out);
        self.comps.push(Component::Transport {
            inputs: inputs.to_vec(),
            out,
            delay: 1,
        });
        out
    }

    fn fanout(&self) -> Vec<Vec<CompId>> {
        let mut fanout = vec![Vec::new(); self.initial.len()];
        for (i, comp) in self.comps.iter().enumerate() {
            let id = CompId(i as u32);
            match comp {
                Component::Gate { a, b, .. } => {
                    fanout[a.0 as usize].push(id);
                    if let Some(b) = b {
                        if b != a {
                            fanout[b.0 as usize].push(id);
                        }
                    }
                }
                Component::Transport { inputs, .. } => {
                    let mut seen: Vec<WireId> = Vec::new();
                    for &w in inputs {
                        if !seen.contains(&w) {
                            seen.push(w);
                            fanout[w.0 as usize].push(id);
                        }
                    }
                }
            }
        }
        fanout
    }
}

/// Events inside a running circuit.
#[derive(Debug, Clone, Copy)]
pub enum CircuitEvent {
    /// A transport element or external source drives a wire.
    Drive {
        /// The wire being driven.
        wire: WireId,
        /// The new logic level.
        value: bool,
    },
    /// An inertial gate's pending transition fires (if still current).
    GateFire {
        /// The gate whose output transitions.
        comp: CompId,
        /// Sequence number guarding against superseded transitions.
        seq: u64,
    },
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    value: bool,
    seq: u64,
}

// ---------------------------------------------------------------------------
// Compiled event loop.
//
// The gate-level loop is one of the repo's hottest paths (every packet
// waveform through a switch is thousands of Drive/GateFire events), and
// the original model paid for three pointer chases per event: a nested
// `Vec<Vec<CompId>>` fanout, a `Vec<Component>` whose Transport arms each
// own a heap-allocated input list, and a `BTreeMap` probe lookup on every
// wire change. `compile` flattens all of that once per run into
// contiguous arrays — CSR fanout, `Copy` component records with transport
// inputs concatenated into one slice, and an O(1) probe-slot vector.
// The event *sequence* is bit-identical to the original model (same
// touch order, same pending seq allocation, same scheduler calls), which
// is proven against the retained [`ReferenceModel`] by the equivalence
// tests below; the reference also serves as the perf baseline for the
// BENCH_8.json before/after delta.

/// A component flattened for the hot loop. Wire ids are raw indices;
/// `u32::MAX` marks an absent gate input b. Transport inputs live in
/// [`CircuitModel::tr_inputs`] at `lo..hi`.
#[derive(Debug, Clone, Copy)]
enum CompiledComp {
    Gate {
        kind: GateKind,
        a: u32,
        b: u32,
        out: u32,
        delay: Fs,
    },
    Transport {
        lo: u32,
        hi: u32,
        out: u32,
        delay: Fs,
    },
}

impl CompiledComp {
    fn out(self) -> WireId {
        match self {
            CompiledComp::Gate { out, .. } | CompiledComp::Transport { out, .. } => WireId(out),
        }
    }
}

struct CircuitModel {
    comps: Vec<CompiledComp>,
    /// Concatenated transport input wires (CSR payload for `Transport`).
    tr_inputs: Vec<u32>,
    /// CSR fanout: wire `w` touches `fanout_dat[fanout_off[w]..fanout_off[w+1]]`.
    fanout_off: Vec<u32>,
    fanout_dat: Vec<u32>,
    values: Vec<bool>,
    pending: Vec<Option<Pending>>,
    next_seq: u64,
    /// Per-wire probe slot (`u32::MAX` = unprobed), replacing a per-event
    /// `BTreeMap` lookup with an indexed load.
    probe_slot: Vec<u32>,
    /// Traces indexed by probe slot, in probe insertion order.
    traces: Vec<Vec<(Fs, bool)>>,
}

impl CircuitModel {
    fn compile(netlist: &Netlist, probes: &[WireId]) -> Self {
        let nested = netlist.fanout();
        let mut fanout_off = Vec::with_capacity(nested.len() + 1);
        let mut fanout_dat = Vec::with_capacity(nested.iter().map(Vec::len).sum());
        fanout_off.push(0u32);
        for row in &nested {
            fanout_dat.extend(row.iter().map(|c| c.0));
            fanout_off.push(fanout_dat.len() as u32);
        }

        let mut tr_inputs = Vec::new();
        let comps = netlist
            .comps
            .iter()
            .map(|comp| match comp {
                Component::Gate {
                    kind,
                    a,
                    b,
                    out,
                    delay,
                } => CompiledComp::Gate {
                    kind: *kind,
                    a: a.0,
                    b: b.map_or(u32::MAX, |w| w.0),
                    out: out.0,
                    delay: *delay,
                },
                Component::Transport { inputs, out, delay } => {
                    let lo = tr_inputs.len() as u32;
                    tr_inputs.extend(inputs.iter().map(|w| w.0));
                    CompiledComp::Transport {
                        lo,
                        hi: tr_inputs.len() as u32,
                        out: out.0,
                        delay: *delay,
                    }
                }
            })
            .collect();

        let mut probe_slot = vec![u32::MAX; netlist.initial.len()];
        for (slot, &w) in probes.iter().enumerate() {
            probe_slot[w.0 as usize] = slot as u32;
        }

        CircuitModel {
            comps,
            tr_inputs,
            fanout_off,
            fanout_dat,
            values: netlist.initial.clone(),
            pending: vec![None; netlist.comps.len()],
            next_seq: 0,
            probe_slot,
            traces: vec![Vec::new(); probes.len()],
        }
    }

    fn set_wire(
        &mut self,
        now: Time,
        wire: WireId,
        value: bool,
        sched: &mut Scheduler<CircuitEvent>,
    ) {
        let idx = wire.0 as usize;
        if self.values[idx] == value {
            return;
        }
        self.values[idx] = value;
        let slot = self.probe_slot[idx];
        if slot != u32::MAX {
            self.traces[slot as usize].push((now.as_ps(), value));
        }
        let lo = self.fanout_off[idx] as usize;
        let hi = self.fanout_off[idx + 1] as usize;
        for i in lo..hi {
            let comp = CompId(self.fanout_dat[i]);
            self.touch(now, comp, sched);
        }
    }

    fn touch(&mut self, now: Time, comp: CompId, sched: &mut Scheduler<CircuitEvent>) {
        let c = comp.0 as usize;
        match self.comps[c] {
            CompiledComp::Gate {
                kind,
                a,
                b,
                out,
                delay,
            } => {
                let va = self.values[a as usize];
                let vb = b != u32::MAX && self.values[b as usize];
                let v = kind.eval(va, vb);
                let cur = self.values[out as usize];
                match self.pending[c] {
                    Some(p) if p.value == v => {}
                    Some(_) => {
                        self.pending[c] = None;
                        if v != cur {
                            self.schedule_gate(comp, v, delay, sched);
                        }
                    }
                    None => {
                        if v != cur {
                            self.schedule_gate(comp, v, delay, sched);
                        }
                    }
                }
                let _ = now;
            }
            CompiledComp::Transport { lo, hi, out, delay } => {
                let mut v = false;
                for &w in &self.tr_inputs[lo as usize..hi as usize] {
                    v |= self.values[w as usize];
                }
                sched.schedule_in(
                    baldur_sim::Duration::from_ps(delay),
                    CircuitEvent::Drive {
                        wire: WireId(out),
                        value: v,
                    },
                );
            }
        }
    }

    fn schedule_gate(
        &mut self,
        comp: CompId,
        value: bool,
        delay: Fs,
        sched: &mut Scheduler<CircuitEvent>,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending[comp.0 as usize] = Some(Pending { value, seq });
        sched.schedule_in(
            baldur_sim::Duration::from_ps(delay),
            CircuitEvent::GateFire { comp, seq },
        );
    }
}

impl Model for CircuitModel {
    type Event = CircuitEvent;

    fn handle(&mut self, now: Time, event: CircuitEvent, sched: &mut Scheduler<CircuitEvent>) {
        match event {
            CircuitEvent::Drive { wire, value } => self.set_wire(now, wire, value, sched),
            CircuitEvent::GateFire { comp, seq } => {
                let c = comp.0 as usize;
                if let Some(p) = self.pending[c] {
                    if p.seq == seq {
                        self.pending[c] = None;
                        let out = self.comps[c].out();
                        self.set_wire(now, out, p.value, sched);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reference event loop (pre-optimization), retained verbatim.

/// The original interpreted circuit model: nested-`Vec` fanout, enum
/// components holding their own input vectors, and `BTreeMap` probes.
/// Kept as the perf baseline measured into BENCH_8.json and as the
/// differential oracle proving the compiled loop replays the exact same
/// event sequence.
struct ReferenceModel {
    netlist: Netlist,
    fanout: Vec<Vec<CompId>>,
    values: Vec<bool>,
    pending: Vec<Option<Pending>>,
    next_seq: u64,
    probes: BTreeMap<WireId, Vec<(Fs, bool)>>,
}

impl ReferenceModel {
    fn set_wire(
        &mut self,
        now: Time,
        wire: WireId,
        value: bool,
        sched: &mut Scheduler<CircuitEvent>,
    ) {
        let idx = wire.0 as usize;
        if self.values[idx] == value {
            return;
        }
        self.values[idx] = value;
        if let Some(trace) = self.probes.get_mut(&wire) {
            trace.push((now.as_ps(), value));
        }
        for i in 0..self.fanout[idx].len() {
            let comp = self.fanout[idx][i];
            self.touch(now, comp, sched);
        }
    }

    fn touch(&mut self, now: Time, comp: CompId, sched: &mut Scheduler<CircuitEvent>) {
        let c = comp.0 as usize;
        match &self.netlist.comps[c] {
            Component::Gate {
                kind,
                a,
                b,
                out,
                delay,
            } => {
                let va = self.values[a.0 as usize];
                let vb = b.map(|w| self.values[w.0 as usize]).unwrap_or(false);
                let v = kind.eval(va, vb);
                let cur = self.values[out.0 as usize];
                let delay = *delay;
                match self.pending[c] {
                    Some(p) if p.value == v => {}
                    Some(_) => {
                        self.pending[c] = None;
                        if v != cur {
                            self.schedule_gate(comp, v, delay, sched);
                        }
                    }
                    None => {
                        if v != cur {
                            self.schedule_gate(comp, v, delay, sched);
                        }
                    }
                }
                let _ = now;
            }
            Component::Transport { inputs, out, delay } => {
                let v = inputs.iter().any(|w| self.values[w.0 as usize]);
                let (out, delay) = (*out, *delay);
                sched.schedule_in(
                    baldur_sim::Duration::from_ps(delay),
                    CircuitEvent::Drive {
                        wire: out,
                        value: v,
                    },
                );
            }
        }
    }

    fn schedule_gate(
        &mut self,
        comp: CompId,
        value: bool,
        delay: Fs,
        sched: &mut Scheduler<CircuitEvent>,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending[comp.0 as usize] = Some(Pending { value, seq });
        sched.schedule_in(
            baldur_sim::Duration::from_ps(delay),
            CircuitEvent::GateFire { comp, seq },
        );
    }
}

impl Model for ReferenceModel {
    type Event = CircuitEvent;

    fn handle(&mut self, now: Time, event: CircuitEvent, sched: &mut Scheduler<CircuitEvent>) {
        match event {
            CircuitEvent::Drive { wire, value } => self.set_wire(now, wire, value, sched),
            CircuitEvent::GateFire { comp, seq } => {
                let c = comp.0 as usize;
                if let Some(p) = self.pending[c] {
                    if p.seq == seq {
                        self.pending[c] = None;
                        let out = self.netlist.comps[c].out();
                        self.set_wire(now, out, p.value, sched);
                    }
                }
            }
        }
    }
}

/// Everything a [`CircuitSim::run_reference`] run observes, for
/// comparison against the compiled loop's accessors.
pub struct ReferenceRun {
    /// Settled-or-active outcome, as [`CircuitSim::run`] would return.
    pub outcome: RunOutcome,
    /// Final level of every wire.
    pub values: Vec<bool>,
    /// Probe traces in probe insertion order.
    pub traces: Vec<Vec<(Fs, bool)>>,
    /// Events executed by the kernel.
    pub events: u64,
}

/// Result of a circuit run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// All activity ceased at the given instant, before the horizon.
    Settled {
        /// Femtosecond timestamp of the last executed event.
        at: Fs,
    },
    /// Events were still pending at the horizon (oscillation, or a source
    /// scheduled past it).
    ActiveAtHorizon,
}

/// A netlist prepared for (or having completed) simulation.
///
/// The `Debug` representation summarizes size and run state rather than
/// dumping every wire.
pub struct CircuitSim {
    netlist: Option<Netlist>,
    probes: Vec<WireId>,
    staged_drives: Vec<(WireId, Waveform)>,
    sim: Option<Simulation<CircuitModel>>,
}

impl std::fmt::Debug for CircuitSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitSim")
            .field("wires", &self.netlist().wire_count())
            .field("tl_gates", &self.netlist().tl_gate_count())
            .field("ran", &self.sim.is_some())
            .field("events", &self.events_executed())
            .finish()
    }
}

impl CircuitSim {
    /// Prepares `netlist` for simulation.
    pub fn new(netlist: Netlist) -> Self {
        CircuitSim {
            netlist: Some(netlist),
            probes: Vec::new(),
            staged_drives: Vec::new(),
            sim: None,
        }
    }

    /// Records every transition of `wire` for later inspection.
    ///
    /// # Panics
    ///
    /// Panics if called after [`CircuitSim::run`].
    pub fn probe(&mut self, wire: WireId) {
        assert!(self.sim.is_none(), "probes must be added before running");
        if !self.probes.contains(&wire) {
            self.probes.push(wire);
        }
    }

    /// Drives `wire` with an external waveform (a packet arriving on an
    /// input fiber).
    ///
    /// # Panics
    ///
    /// Panics if called after [`CircuitSim::run`].
    pub fn drive(&mut self, wire: WireId, wave: &Waveform) {
        assert!(self.sim.is_none(), "drive before running");
        self.staged_drives.push((wire, wave.clone()));
    }

    /// Runs the circuit until quiescent or until `horizon` femtoseconds.
    ///
    /// Returns [`RunOutcome::ActiveAtHorizon`] if the circuit is still
    /// switching at the horizon — typically an oscillation bug.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn run(&mut self, horizon: Fs) -> RunOutcome {
        assert!(self.sim.is_none(), "run() may only be called once");
        let netlist = self.netlist.as_ref().expect("netlist present");
        let model = CircuitModel::compile(netlist, &self.probes);
        let n = netlist.comps.len();
        let mut sim = Simulation::new(model);
        // Settle phase: evaluate every component once at t = 0 so outputs
        // that were initialized inconsistently (deliberately or not)
        // converge before the first stimulus.
        {
            let (model, sched) = sim.split();
            for i in 0..n {
                model.touch(Time::ZERO, CompId(i as u32), sched);
            }
        }
        for (wire, wave) in &self.staged_drives {
            let sched = sim.scheduler_mut();
            for (i, &t) in wave.transitions().iter().enumerate() {
                sched.schedule_at(
                    Time::from_ps(t),
                    CircuitEvent::Drive {
                        wire: *wire,
                        value: i % 2 == 0,
                    },
                );
            }
        }
        let outcome = match sim.run_until(Time::from_ps(horizon), u64::MAX) {
            baldur_sim::engine::StopReason::Drained => RunOutcome::Settled {
                at: sim.scheduler().now().as_ps(),
            },
            _ => RunOutcome::ActiveAtHorizon,
        };
        self.sim = Some(sim);
        outcome
    }

    /// Runs a copy of the circuit (same probes and staged drives) on the
    /// retained pre-optimization [`ReferenceModel`] and returns what it
    /// observed. Does not consume or disturb the staged [`CircuitSim::run`],
    /// so both can execute on one `CircuitSim` and be compared — that is
    /// exactly what the equivalence tests and the `tl_loop` perf baseline
    /// benchmark do.
    pub fn run_reference(&self, horizon: Fs) -> ReferenceRun {
        let netlist = self.netlist.clone().expect("netlist present");
        let fanout = netlist.fanout();
        let values = netlist.initial.clone();
        let pending = vec![None; netlist.comps.len()];
        let mut probes = BTreeMap::new();
        for &w in &self.probes {
            probes.insert(w, Vec::new());
        }
        let n = netlist.comps.len();
        let model = ReferenceModel {
            netlist,
            fanout,
            values,
            pending,
            next_seq: 0,
            probes,
        };
        let mut sim = Simulation::new(model);
        {
            let (model, sched) = sim.split();
            for i in 0..n {
                model.touch(Time::ZERO, CompId(i as u32), sched);
            }
        }
        for (wire, wave) in &self.staged_drives {
            let sched = sim.scheduler_mut();
            for (i, &t) in wave.transitions().iter().enumerate() {
                sched.schedule_at(
                    Time::from_ps(t),
                    CircuitEvent::Drive {
                        wire: *wire,
                        value: i % 2 == 0,
                    },
                );
            }
        }
        let outcome = match sim.run_until(Time::from_ps(horizon), u64::MAX) {
            baldur_sim::engine::StopReason::Drained => RunOutcome::Settled {
                at: sim.scheduler().now().as_ps(),
            },
            _ => RunOutcome::ActiveAtHorizon,
        };
        let events = sim.scheduler().events_executed();
        let mut model = sim.into_model();
        ReferenceRun {
            outcome,
            values: std::mem::take(&mut model.values),
            traces: self
                .probes
                .iter()
                .map(|w| model.probes.remove(w).expect("probe trace present"))
                .collect(),
            events,
        }
    }

    fn model(&self) -> &CircuitModel {
        self.sim.as_ref().expect("simulation has not run").model()
    }

    /// The final level of `wire`.
    pub fn level(&self, wire: WireId) -> bool {
        match &self.sim {
            Some(sim) => sim.model().values[wire.0 as usize],
            None => self.netlist.as_ref().expect("netlist present").initial[wire.0 as usize],
        }
    }

    /// Slot-indexed trace of a probed wire.
    fn trace_of(&self, wire: WireId) -> &[(Fs, bool)] {
        let model = self.model();
        let slot = model
            .probe_slot
            .get(wire.0 as usize)
            .copied()
            .unwrap_or(u32::MAX);
        assert!(slot != u32::MAX, "wire was not probed");
        model.traces[slot as usize].as_slice()
    }

    /// The recorded waveform of a probed wire (post-run).
    ///
    /// # Panics
    ///
    /// Panics if `wire` was not probed or the simulation has not run.
    pub fn probed(&self, wire: WireId) -> Waveform {
        let trace = self.trace_of(wire);
        Waveform::from_transitions(trace.iter().map(|&(t, _)| t).collect())
    }

    /// Raw probe trace: `(time_fs, new_level)` pairs.
    pub fn probe_trace(&self, wire: WireId) -> &[(Fs, bool)] {
        self.trace_of(wire)
    }

    /// Access to the netlist.
    pub fn netlist(&self) -> &Netlist {
        self.netlist.as_ref().expect("netlist present")
    }

    /// All probed wires with their traces, for VCD export.
    pub fn probe_iter(&self) -> impl Iterator<Item = (WireId, &[(Fs, bool)])> {
        self.probes.iter().map(move |&w| (w, self.trace_of(w)))
    }

    /// Number of events executed (simulator throughput metric).
    pub fn events_executed(&self) -> u64 {
        self.sim
            .as_ref()
            .map(|s| s.scheduler().events_executed())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverter_chain_settles() {
        let mut n = Netlist::new();
        let a = n.wire();
        let b = n.not(a);
        let c = n.not(b);
        let d = n.not(c);
        let mut sim = CircuitSim::new(n);
        assert!(matches!(sim.run(1_000_000), RunOutcome::Settled { .. }));
        assert!(!sim.level(a));
        assert!(sim.level(b));
        assert!(!sim.level(c));
        assert!(sim.level(d));
    }

    #[test]
    fn and_gate_follows_pulse_with_gate_delay() {
        let mut n = Netlist::new();
        let a = n.wire();
        let en = n.wire_with(true);
        let out = n.and2(a, en);
        let mut sim = CircuitSim::new(n);
        sim.probe(out);
        sim.drive(a, &Waveform::from_pulses([(10_000, 30_000)]));
        assert!(matches!(sim.run(1_000_000), RunOutcome::Settled { .. }));
        assert_eq!(sim.probed(out).transitions(), &[11_930, 31_930]);
    }

    #[test]
    fn inertial_gate_filters_short_glitch() {
        let mut n = Netlist::new();
        let a = n.wire();
        let en = n.wire_with(true);
        let out = n.and2(a, en);
        let mut sim = CircuitSim::new(n);
        sim.probe(out);
        // 500 fs glitch, far below the 1,930 fs gate delay.
        sim.drive(a, &Waveform::from_pulses([(10_000, 10_500)]));
        assert!(matches!(sim.run(1_000_000), RunOutcome::Settled { .. }));
        assert!(sim.probed(out).is_dark(), "glitch should be filtered");
    }

    #[test]
    fn waveguide_is_pure_transport() {
        let mut n = Netlist::new();
        let a = n.wire();
        let out = n.waveguide(a, 132_000); // the switch's 132 ps WD
        let mut sim = CircuitSim::new(n);
        sim.probe(out);
        sim.drive(a, &Waveform::from_pulses([(1_000, 1_600), (2_000, 2_400)]));
        assert!(matches!(sim.run(1_000_000), RunOutcome::Settled { .. }));
        assert_eq!(
            sim.probed(out).transitions(),
            &[133_000, 133_600, 134_000, 134_400]
        );
    }

    #[test]
    fn combiner_is_an_or() {
        let mut n = Netlist::new();
        let a = n.wire();
        let b = n.wire();
        let out = n.combiner(&[a, b]);
        let mut sim = CircuitSim::new(n);
        sim.probe(out);
        sim.drive(a, &Waveform::from_pulses([(1_000, 3_000)]));
        sim.drive(b, &Waveform::from_pulses([(2_000, 5_000)]));
        assert!(matches!(sim.run(1_000_000), RunOutcome::Settled { .. }));
        assert_eq!(sim.probed(out).transitions(), &[1_001, 5_001]);
    }

    #[test]
    fn nor_latch_sets_and_resets() {
        let mut n = Netlist::new();
        let s = n.wire();
        let r = n.wire();
        let q = n.wire_with(false);
        let qb = n.wire_with(true);
        n.gate_into(GateKind::Nor2, r, Some(qb), q, 1_930);
        n.gate_into(GateKind::Nor2, s, Some(q), qb, 1_990);
        let mut sim = CircuitSim::new(n);
        sim.probe(q);
        sim.drive(s, &Waveform::from_pulses([(50_000, 60_000)]));
        sim.drive(r, &Waveform::from_pulses([(150_000, 160_000)]));
        assert!(matches!(sim.run(1_000_000), RunOutcome::Settled { .. }));
        let w = sim.probed(q);
        let trs = w.transitions();
        assert_eq!(trs.len(), 2, "one set and one reset: {trs:?}");
        assert!(trs[0] > 50_000 && trs[0] < 60_000, "{trs:?}");
        assert!(trs[1] > 150_000 && trs[1] < 160_000, "{trs:?}");
    }

    /// Asserts the compiled loop and the retained reference loop observe
    /// the same run: outcome, executed-event count (the perf harness ops
    /// counter), every wire level, and every probe trace byte-for-byte.
    fn assert_matches_reference(mut sim: CircuitSim, probes: &[WireId], horizon: Fs) {
        let reference = sim.run_reference(horizon);
        let outcome = sim.run(horizon);
        assert_eq!(outcome, reference.outcome);
        assert_eq!(sim.events_executed(), reference.events);
        for w in 0..sim.netlist().wire_count() {
            assert_eq!(
                sim.level(WireId(w as u32)),
                reference.values[w],
                "wire {w} level"
            );
        }
        for (slot, &w) in probes.iter().enumerate() {
            assert_eq!(
                sim.probe_trace(w),
                reference.traces[slot].as_slice(),
                "probe {slot} trace"
            );
        }
    }

    #[test]
    fn compiled_loop_matches_reference_on_latch() {
        let mut n = Netlist::new();
        let s = n.wire();
        let r = n.wire();
        let q = n.wire_with(false);
        let qb = n.wire_with(true);
        n.gate_into(GateKind::Nor2, r, Some(qb), q, 1_930);
        n.gate_into(GateKind::Nor2, s, Some(q), qb, 1_990);
        let dq = n.waveguide(q, 132_000);
        let c = n.combiner(&[dq, s]);
        let mut sim = CircuitSim::new(n);
        sim.probe(q);
        sim.probe(c);
        sim.drive(s, &Waveform::from_pulses([(50_000, 60_000)]));
        sim.drive(r, &Waveform::from_pulses([(150_000, 160_000)]));
        assert_matches_reference(sim, &[q, c], 1_000_000);
    }

    #[test]
    fn compiled_loop_matches_reference_on_switch_packets() {
        use crate::switch::{build_switch, SwitchParams};
        use baldur_phy::length_code::LengthCode;
        use baldur_phy::packet_wave::assemble;
        use baldur_phy::waveform::BIT_PERIOD_FS;

        let code = LengthCode::paper();
        let mut n = Netlist::new();
        let sw = build_switch(&mut n, SwitchParams::paper());
        let mut sim = CircuitSim::new(n);
        sim.probe(sw.outputs[0]);
        sim.probe(sw.outputs[1]);
        let p0 = assemble(&code, &[false, true], b"REF", 10 * BIT_PERIOD_FS);
        let p1 = assemble(&code, &[false, false], b"EQV", 12 * BIT_PERIOD_FS);
        sim.drive(sw.inputs[0], &p0.wave);
        sim.drive(sw.inputs[1], &p1.wave);
        let horizon = p0.end.max(p1.end) + 3_000_000;
        let probes = [sw.outputs[0], sw.outputs[1]];
        assert_matches_reference(sim, &probes, horizon);
    }

    #[test]
    fn settle_phase_fixes_inconsistent_initials() {
        let mut n = Netlist::new();
        let a = n.wire_with(true);
        // Deliberately create the output wire dark, then attach an
        // inverter-of-inverter driving it.
        let inv = n.not(a); // initial computed consistent: false
        assert!(!n.initial[inv.0 as usize]);
        let out = n.wire_with(true); // wrong: NOT(false) = true is right!
        n.gate_into(GateKind::Not, inv, None, out, 1_930);
        let mut sim = CircuitSim::new(n);
        assert!(matches!(sim.run(1_000_000), RunOutcome::Settled { .. }));
        assert!(sim.level(out));
    }

    #[test]
    #[should_panic(expected = "already has a driver")]
    fn double_driver_rejected() {
        let mut n = Netlist::new();
        let a = n.wire();
        let out = n.not(a);
        n.gate_into(GateKind::Not, a, None, out, 1_930);
    }

    #[test]
    fn data_stream_passes_and_gate_intact() {
        // A full 8b/10b payload at T spacing survives a gate (pulse widths
        // >= T = 16,667 fs >> 1,930 fs delay).
        use baldur_phy::eightbtenb::Encoder;
        let mut enc = Encoder::new();
        let bits = enc.encode_bits(b"Baldur!");
        let t = 16_667u64;
        let mut pulses = Vec::new();
        let mut run_start = None;
        for (i, &b) in bits.iter().enumerate() {
            let at = 10_000 + i as u64 * t;
            match (b, run_start) {
                (true, None) => run_start = Some(at),
                (false, Some(s)) => {
                    pulses.push((s, at));
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = run_start {
            pulses.push((s, 10_000 + bits.len() as u64 * t));
        }
        let wave = Waveform::from_pulses(pulses);

        let mut n = Netlist::new();
        let a = n.wire();
        let en = n.wire_with(true);
        let out = n.and2(a, en);
        let mut sim = CircuitSim::new(n);
        sim.probe(out);
        sim.drive(a, &wave);
        assert!(matches!(sim.run(10_000_000), RunOutcome::Settled { .. }));
        let got = sim.probed(out);
        let expect = wave.delayed(1_930);
        assert_eq!(got.transitions(), expect.transitions());
    }
}

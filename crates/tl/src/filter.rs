//! In-network optical filtering (paper Sec. VIII future work: "network
//! filtering for security purposes").
//!
//! A filter block sits on a waveguide and drops packets whose first `k`
//! routing bits match a *programmed* pattern — entirely in the optical
//! domain. The mechanism extends the switch's header machinery from one
//! captured bit to `k`:
//!
//! * a **token cascade** of SR latches walks one position per routing-bit
//!   falling edge, so capture `i` samples exactly the i-th bit's length,
//! * each captured bit is XNOR-compared against a constant pattern wire,
//! * when the k-th token advances, a full-prefix match raises `block`,
//!   which kills the AND gate the (delay-matched) packet must traverse.
//!
//! Non-matching packets pass intact, delayed by the block's internal
//! waveguide; matching packets never reach the output — an optical
//! firewall rule at line rate.

use baldur_phy::waveform::{Fs, BIT_PERIOD_FS};

use crate::detector::{line_activity_detector, DetectorParams};
use crate::latch::sr_latch;
use crate::netlist::{GateKind, Netlist, WireId};

/// Handles to a built filter block.
#[derive(Debug, Clone)]
pub struct Filter {
    /// The optical input.
    pub input: WireId,
    /// The filtered output.
    pub output: WireId,
    /// High while a matching packet is being suppressed (observability).
    pub blocking: WireId,
    /// The captured routing-bit latches (observability).
    pub captured: Vec<WireId>,
}

/// Parameters of the filter block.
#[derive(Debug, Clone)]
pub struct FilterParams {
    /// Detector geometry (defaults match the switch).
    pub detector: DetectorParams,
    /// The routing-bit prefix to block, most-significant first.
    pub pattern: Vec<bool>,
    /// Pass-through delay; must exceed the time to capture the whole
    /// prefix (`pattern.len() * 3T` plus latch margins).
    pub pass_delay: Fs,
}

impl FilterParams {
    /// A filter blocking `pattern`, with the pass delay sized
    /// automatically.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is empty or longer than 8 bits.
    pub fn blocking(pattern: Vec<bool>) -> Self {
        assert!(
            !pattern.is_empty() && pattern.len() <= 8,
            "pattern must be 1..=8 bits"
        );
        let t = BIT_PERIOD_FS;
        // Capture of bit k completes ~ (k slots) + sampling window +
        // comparator depth; one extra slot is ample margin.
        let pass_delay = (pattern.len() as Fs + 1) * 3 * t + 2 * t;
        FilterParams {
            detector: DetectorParams::paper(),
            pattern,
            pass_delay,
        }
    }
}

/// XNOR from two-input TL gates: `or(and(a, b), nor(a, b))`.
fn xnor(n: &mut Netlist, a: WireId, b: WireId) -> WireId {
    let both = n.and2(a, b);
    let neither = n.nor2(a, b);
    n.or2(both, neither)
}

/// Builds the filter block into `n`.
pub fn build_filter(n: &mut Netlist, p: &FilterParams) -> Filter {
    let k = p.pattern.len();
    let input = n.wire();
    n.name_wire(input, "filter_in");
    let det = line_activity_detector(n, input, p.detector);
    let end = det.end_pulse;

    // Token cascade: token[0] set at packet start, token[i+1] set when
    // capture i fires; every token clears at end of packet (and when its
    // successor takes over, so fall_window pulses can't double-capture).
    let mut tokens = Vec::with_capacity(k + 1);
    let mut capture_pulses = Vec::with_capacity(k);
    let mut captured = Vec::with_capacity(k);
    // token 0: set by the start pulse.
    let mut set_wire = det.start_pulse;
    for i in 0..=k {
        // Reset: end-of-packet OR the handoff pulse (attached below via a
        // dedicated wire).
        let handoff = n.wire();
        let reset = n.or2(end, handoff);
        let tok = sr_latch(n, set_wire, reset);
        tokens.push((tok, handoff));
        if i == k {
            break;
        }
        // Capture pulse i: the input's falling-edge window while token i
        // holds.
        let c = n.and2(det.fall_window, tok.q);
        capture_pulses.push(c);
        // Routing latch i samples the delayed data on that pulse.
        let s_bit = n.and2(c, det.data_delayed);
        let bit = sr_latch(n, s_bit, end);
        captured.push(bit.q);
        n.name_wire(bit.q, &format!("filter_bit{i}"));
        // The same pulse hands the token forward.
        set_wire = c;
    }
    // Close the handoff loops: token i clears when capture i fires.
    for (i, c) in capture_pulses.iter().enumerate() {
        let delay = n.gate_delay();
        n.gate_into(GateKind::Or2, *c, Some(*c), tokens[i].1, delay);
    }
    // The terminal token's handoff never fires; tie it low via a dead AND.
    {
        let zero = n.wire();
        let delay = n.gate_delay();
        n.gate_into(GateKind::And2, zero, Some(zero), tokens[k].1, delay);
    }

    // Comparator: all captured bits match the pattern. Length-code
    // polarity: a latch that sampled HIGH saw a 2T pulse, i.e. a logic
    // **0** bit (same convention as the switch's routing latch).
    let mut match_acc: Option<WireId> = None;
    for (i, &want) in p.pattern.iter().enumerate() {
        let bit_ok = if want {
            n.not(captured[i])
        } else {
            captured[i]
        };
        match_acc = Some(match match_acc {
            None => bit_ok,
            Some(acc) => n.and2(acc, bit_ok),
        });
    }
    let prefix_match = match_acc.expect("k >= 1");
    // Valid only once the whole prefix was captured (terminal token set)
    // AND the comparator inputs have settled: the final capture both sets
    // its bit latch and advances the token, so an inverter-lag glitch
    // rides the token edge. Half a bit period of verdict delay outwaits
    // it.
    let verdict_ready = n.waveguide(tokens[k].0.q, BIT_PERIOD_FS / 2);
    let blocking = n.and2(prefix_match, verdict_ready);
    n.name_wire(blocking, "filter_block");

    // The kill signal must outlive the token (which clears at the *input*
    // packet's end) for as long as the delayed copy keeps draining.
    let held = n.waveguide(blocking, p.pass_delay);
    let kill = n.or2(blocking, held);

    // Pass-through: delay the packet until the verdict is ready, then
    // gate it with NOT(kill).
    let delayed = n.waveguide(input, p.pass_delay);
    let allow = n.not(kill);
    let output = n.and2(delayed, allow);
    n.name_wire(output, "filter_out");

    let _ = xnor; // retained for multi-polarity comparators

    Filter {
        input,
        output,
        blocking,
        captured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::TlGate;
    use crate::netlist::{CircuitSim, RunOutcome};
    use baldur_phy::length_code::LengthCode;
    use baldur_phy::packet_wave::assemble;

    const T: u64 = 16_667;

    fn run(
        pattern: Vec<bool>,
        bits: &[bool],
    ) -> (CircuitSim, Filter, baldur_phy::packet_wave::PacketWave) {
        let fp = FilterParams::blocking(pattern);
        let mut n = Netlist::new();
        let f = build_filter(&mut n, &fp);
        let mut sim = CircuitSim::new(n);
        sim.probe(f.output);
        sim.probe(f.blocking);
        for &c in &f.captured {
            sim.probe(c);
        }
        let code = LengthCode::paper();
        let pw = assemble(&code, bits, b"SEC", 10 * T);
        sim.drive(f.input, &pw.wave);
        let out = sim.run(pw.end + 4_000_000);
        assert!(matches!(out, RunOutcome::Settled { .. }), "did not settle");
        (sim, f, pw)
    }

    #[test]
    fn matching_prefix_is_blocked() {
        let (sim, f, _) = run(vec![true, false], &[true, false, true]);
        let out = sim.probed(f.output);
        // The verdict lands before the delayed packet: nothing after the
        // capture horizon leaks. (A sub-bit sliver before blocking rises
        // is acceptable — the downstream detector sees no valid packet.)
        let leaked = out.lit_time(u64::MAX);
        assert!(leaked < 2 * T, "blocked packet leaked {leaked} fs of light");
        assert!(!sim.probed(f.blocking).is_dark(), "blocking must assert");
    }

    #[test]
    fn non_matching_packet_passes_intact() {
        let (sim, f, pw) = run(vec![true, false], &[true, true, false]);
        let g = TlGate::PAPER.delay_fs();
        let fp = FilterParams::blocking(vec![true, false]);
        // Output = input delayed by pass_delay + the allow AND + 0 (allow
        // is already high).
        let expect = pw.wave.delayed(fp.pass_delay + g);
        assert_eq!(
            sim.probed(f.output).transitions(),
            expect.transitions(),
            "pass-through must be bit-exact"
        );
        assert!(sim.probed(f.blocking).is_dark());
    }

    #[test]
    fn single_bit_filter_works_both_ways() {
        let (sim, f, _) = run(vec![false], &[false, true]);
        assert!(!sim.probed(f.blocking).is_dark(), "0-prefix blocked");
        let (sim, f, _) = run(vec![false], &[true, true]);
        assert!(sim.probed(f.blocking).is_dark(), "1-prefix passes");
    }

    #[test]
    fn three_bit_pattern_discriminates_neighbours() {
        // Block exactly 101; 100 and 111 must pass.
        for (bits, blocked) in [
            (vec![true, false, true], true),
            (vec![true, false, false], false),
            (vec![true, true, true], false),
        ] {
            let (sim, f, _) = run(vec![true, false, true], &bits);
            assert_eq!(!sim.probed(f.blocking).is_dark(), blocked, "bits {bits:?}");
        }
    }

    #[test]
    fn captured_bits_match_the_header() {
        // Latch polarity: high = sampled a 2T pulse = logic 0. The end
        // pulse clears latches after the packet, so inspect the traces.
        let (sim, f, _) = run(vec![true, true], &[true, false, true]);
        assert!(
            sim.probed(f.captured[0]).is_dark(),
            "bit 0 was a 1 (1T pulse): latch must never set"
        );
        assert!(
            !sim.probed(f.captured[1]).is_dark(),
            "bit 1 was a 0 (2T pulse): latch must set during the packet"
        );
    }

    #[test]
    #[should_panic(expected = "pattern must be")]
    fn empty_pattern_rejected() {
        FilterParams::blocking(vec![]);
    }
}

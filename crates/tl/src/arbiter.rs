//! The 2x2 asynchronous arbiter (paper Sec. IV-C, after Patil \[47\]).
//!
//! A mutual-exclusion element built from a cross-coupled NAND pair plus an
//! output filter: `grant_i` can only rise when the opposing internal node is
//! quiescent, so at most one grant is high at any instant. Slightly
//! asymmetric NAND delays resolve exactly-simultaneous requests
//! deterministically (request 0 wins ties), standing in for the analog
//! metastability filter of the real element.

use crate::netlist::{GateKind, Netlist, WireId};

/// Handles to a mutual-exclusion element.
#[derive(Debug, Clone, Copy)]
pub struct Mutex2 {
    /// Grant for requester 0; high only while request 0 holds the resource.
    pub grant0: WireId,
    /// Grant for requester 1.
    pub grant1: WireId,
}

/// Builds a two-input mutual-exclusion element.
///
/// Semantics: first-come first-served; a grant is held until its request
/// drops; on exact ties requester 0 wins.
pub fn mutex2(n: &mut Netlist, req0: WireId, req1: WireId) -> Mutex2 {
    let base = n.gate_delay();
    // Cross-coupled NAND core. n0 low <=> requester 0 holds the latch.
    let n0 = n.wire_with(true);
    let n1 = n.wire_with(true);
    n.gate_into(GateKind::Nand2, req0, Some(n1), n0, base);
    n.gate_into(GateKind::Nand2, req1, Some(n0), n1, base + 120);
    // Output filter: grant_i = !n_i AND n_other. During the both-low
    // transient of a race neither AND can assert.
    let n0_inv = n.not(n0);
    let n1_inv = n.not(n1);
    let grant0 = n.and2(n0_inv, n1);
    let grant1 = n.and2(n1_inv, n0);
    Mutex2 { grant0, grant1 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{CircuitSim, RunOutcome};
    use baldur_phy::waveform::{Fs, Waveform};

    const T: u64 = 16_667;

    struct Rig {
        sim: CircuitSim,
        m: Mutex2,
    }

    fn run(r0: &[(Fs, Fs)], r1: &[(Fs, Fs)]) -> Rig {
        let mut n = Netlist::new();
        let req0 = n.wire();
        let req1 = n.wire();
        let m = mutex2(&mut n, req0, req1);
        let mut sim = CircuitSim::new(n);
        sim.probe(m.grant0);
        sim.probe(m.grant1);
        if !r0.is_empty() {
            sim.drive(req0, &Waveform::from_pulses(r0.iter().copied()));
        }
        if !r1.is_empty() {
            sim.drive(req1, &Waveform::from_pulses(r1.iter().copied()));
        }
        let out = sim.run(200 * T);
        assert!(matches!(out, RunOutcome::Settled { .. }), "did not settle");
        Rig { sim, m }
    }

    /// Asserts grants were never simultaneously high.
    fn assert_mutual_exclusion(rig: &Rig) {
        let g0 = rig.sim.probed(rig.m.grant0);
        let g1 = rig.sim.probed(rig.m.grant1);
        let mut edges: Vec<Fs> = g0
            .transitions()
            .iter()
            .chain(g1.transitions().iter())
            .copied()
            .collect();
        edges.sort_unstable();
        for &e in &edges {
            assert!(
                !(g0.level_at(e) && g1.level_at(e)),
                "both grants high at {e} fs"
            );
        }
    }

    #[test]
    fn single_request_granted() {
        let rig = run(&[(5 * T, 50 * T)], &[]);
        let g0 = rig.sim.probed(rig.m.grant0);
        assert_eq!(g0.transitions().len(), 2);
        assert!(rig.sim.probed(rig.m.grant1).is_dark());
    }

    #[test]
    fn first_come_first_served() {
        let rig = run(&[(5 * T, 50 * T)], &[(10 * T, 60 * T)]);
        let g0 = rig.sim.probed(rig.m.grant0);
        let g1 = rig.sim.probed(rig.m.grant1);
        // Requester 0 holds throughout its request; requester 1 only gets
        // the grant after request 0 drops.
        assert!(g0.transitions()[0] < 10 * T);
        assert!(!g1.is_dark(), "late requester gets it eventually");
        assert!(g1.transitions()[0] > 50 * T);
        assert_mutual_exclusion(&rig);
    }

    #[test]
    fn simultaneous_requests_pick_exactly_one() {
        let rig = run(&[(5 * T, 50 * T)], &[(5 * T, 50 * T)]);
        let g0 = rig.sim.probed(rig.m.grant0);
        let g1 = rig.sim.probed(rig.m.grant1);
        assert!(
            !g0.is_dark() ^ g1.is_dark().then_some(true).is_none(),
            "exactly one grant: g0 {:?} g1 {:?}",
            g0.transitions(),
            g1.transitions()
        );
        // Deterministic tie-break: requester 0 wins.
        assert!(!g0.is_dark());
        assert_mutual_exclusion(&rig);
    }

    #[test]
    fn near_simultaneous_requests_settle() {
        for skew in [1u64, 10, 100, 500, 1_000, 1_900, 2_000, 3_000] {
            let rig = run(&[(5 * T, 50 * T)], &[(5 * T + skew, 50 * T)]);
            assert_mutual_exclusion(&rig);
            let g0 = rig.sim.probed(rig.m.grant0);
            assert!(!g0.is_dark(), "skew {skew}: earlier requester wins");
        }
    }

    #[test]
    fn grant_released_on_request_drop() {
        let rig = run(&[(5 * T, 20 * T)], &[]);
        let g0 = rig.sim.probed(rig.m.grant0);
        assert_eq!(g0.transitions().len(), 2);
        assert!(!rig.sim.level(rig.m.grant0));
    }

    #[test]
    fn back_to_back_arbitration_rounds() {
        let rig = run(
            &[(5 * T, 20 * T), (40 * T, 60 * T)],
            &[(10 * T, 35 * T), (45 * T, 70 * T)],
        );
        assert_mutual_exclusion(&rig);
        let g1 = rig.sim.probed(rig.m.grant1);
        // Requester 1 wins the middle interval (20T..35T) after 0 releases.
        assert!(g1.transitions().len() >= 2, "{:?}", g1.transitions());
    }
}

//! Transistor-laser (TL) device model, gate-level circuit simulation, and
//! the Baldur 2x2 all-optical switch.
//!
//! This crate is the reproduction of the paper's device and circuit layers
//! (Sec. III and IV): where the authors used Keysight ADS for device
//! characterization and Synopsys HSPICE for switch validation, we use the
//! paper's own gate-level abstraction (Table IV: every TL gate is a 1.93 ps,
//! 0.406 mW restoring logic element) inside an event-driven netlist
//! simulator with inertial gate delays and transport waveguide delays.
//!
//! Contents:
//!
//! * [`device`] — Table III/IV constants and derived figures of merit,
//! * [`netlist`] — wires, gates, waveguide delays, combiners; the circuit
//!   simulation engine (built on `baldur-sim`, one tick = 1 fs),
//! * [`latch`], [`arbiter`], [`detector`] — the switch's sub-circuits,
//! * [`switch`] — the full Figure-4 2x2 switch (multiplicity 1) and a test
//!   harness that injects encoded packets and decodes the outputs,
//! * [`switch_m`] — the generalized multiplicity-m switch: valid-latch
//!   cascades implement the paper's sequential path arbitration,
//! * [`gate_count`] — the Table V gates/latency model for multiplicity 1–5,
//! * [`reliability`] — the Sec. IV-F timing-jitter error-probability model,
//! * [`vcd`] — waveform export for the Figure 5 reproduction.

pub mod arbiter;
pub mod detector;
pub mod device;
pub mod filter;
pub mod gate_count;
pub mod health;
pub mod latch;
pub mod netlist;
pub mod reliability;
pub mod switch;
pub mod switch_m;
pub mod vcd;

pub use device::TlGate;
pub use netlist::{CircuitSim, Netlist, WireId};

//! SR latches from cross-coupled TL NOR gates (paper Sec. III, ref \[10\]).
//!
//! The two NOR gates carry slightly asymmetric delays so that the
//! forbidden S=R=1 race resolves deterministically in simulation — the
//! discrete stand-in for analog metastability resolution.

use crate::netlist::{GateKind, Netlist, WireId};

/// Handles to an SR latch's outputs.
#[derive(Debug, Clone, Copy)]
pub struct SrLatch {
    /// Latch output (starts low).
    pub q: WireId,
    /// Complementary output (starts high).
    pub qb: WireId,
}

/// Builds a set/reset latch from two cross-coupled NOR gates.
///
/// A set (reset) pulse must exceed roughly one gate delay to commit; shorter
/// pulses are filtered by the gates' inertial behaviour.
pub fn sr_latch(n: &mut Netlist, set: WireId, reset: WireId) -> SrLatch {
    let base = n.gate_delay();
    let q = n.wire_with(false);
    let qb = n.wire_with(true);
    n.gate_into(GateKind::Nor2, reset, Some(qb), q, base);
    // +60 fs (~3%) asymmetry: within the paper's 10% delay variation band.
    n.gate_into(GateKind::Nor2, set, Some(q), qb, base + 60);
    SrLatch { q, qb }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{CircuitSim, RunOutcome};
    use baldur_phy::waveform::Waveform;

    const T: u64 = 16_667;

    fn run(n: Netlist, drives: Vec<(WireId, Waveform)>, probes: &[WireId]) -> CircuitSim {
        let mut sim = CircuitSim::new(n);
        for &p in probes {
            sim.probe(p);
        }
        for (w, wave) in drives {
            sim.drive(w, &wave);
        }
        let out = sim.run(100 * T);
        assert!(matches!(out, RunOutcome::Settled { .. }), "did not settle");
        sim
    }

    #[test]
    fn set_then_reset() {
        let mut n = Netlist::new();
        let s = n.wire();
        let r = n.wire();
        let l = sr_latch(&mut n, s, r);
        let sim = run(
            n,
            vec![
                (s, Waveform::from_pulses([(5 * T, 6 * T)])),
                (r, Waveform::from_pulses([(20 * T, 21 * T)])),
            ],
            &[l.q],
        );
        let w = sim.probed(l.q);
        assert_eq!(w.transitions().len(), 2, "{:?}", w.transitions());
        assert!(!sim.level(l.q));
        assert!(sim.level(l.qb));
    }

    #[test]
    fn holds_state_between_pulses() {
        let mut n = Netlist::new();
        let s = n.wire();
        let r = n.wire();
        let l = sr_latch(&mut n, s, r);
        let sim = run(
            n,
            vec![(s, Waveform::from_pulses([(5 * T, 6 * T)]))],
            &[l.q],
        );
        assert!(sim.level(l.q), "latch must hold after set pulse ends");
    }

    #[test]
    fn sub_gate_delay_pulse_does_not_set() {
        let mut n = Netlist::new();
        let s = n.wire();
        let r = n.wire();
        let l = sr_latch(&mut n, s, r);
        // 1 ps set pulse: below the ~2 ps commit threshold.
        let sim = run(
            n,
            vec![(s, Waveform::from_pulses([(5 * T, 5 * T + 1_000)]))],
            &[],
        );
        assert!(!sim.level(l.q));
        let _ = l;
    }

    #[test]
    fn simultaneous_set_reset_resolves_deterministically() {
        let mut n = Netlist::new();
        let s = n.wire();
        let r = n.wire();
        let l = sr_latch(&mut n, s, r);
        let sim = run(
            n,
            vec![
                (s, Waveform::from_pulses([(5 * T, 7 * T)])),
                (r, Waveform::from_pulses([(5 * T, 7 * T)])),
            ],
            &[],
        );
        // Must settle (no oscillation); final state is one of the two
        // stable states.
        assert_ne!(sim.level(l.q), sim.level(l.qb));
    }

    #[test]
    fn repeated_set_is_idempotent() {
        let mut n = Netlist::new();
        let s = n.wire();
        let r = n.wire();
        let l = sr_latch(&mut n, s, r);
        let sim = run(
            n,
            vec![(s, Waveform::from_pulses([(5 * T, 6 * T), (8 * T, 9 * T)]))],
            &[l.q],
        );
        assert!(sim.level(l.q));
        assert_eq!(sim.probed(l.q).transitions().len(), 1);
    }
}

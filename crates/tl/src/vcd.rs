//! Value Change Dump (VCD) export of circuit probes.
//!
//! Reproduces Figure 5: run the 2x2 switch with probes on the input, the
//! control latches, the grants, and the outputs, then export the traces in
//! the standard VCD format any waveform viewer (GTKWave etc.) understands.

use std::fmt::Write as _;

use baldur_phy::waveform::Fs;

use crate::netlist::{CircuitSim, WireId};

/// Renders every probed wire of a completed simulation as a VCD document.
///
/// Wire names come from [`crate::netlist::Netlist::name_wire`]; unnamed
/// wires are labelled `w<N>`. The timescale is 1 fs, matching the circuit
/// simulator tick.
pub fn to_vcd(sim: &CircuitSim, module: &str) -> String {
    let mut probes: Vec<(WireId, &[(Fs, bool)])> = sim.probe_iter().collect();
    probes.sort_by_key(|(w, _)| *w);

    let mut out = String::new();
    out.push_str("$date reproduction run $end\n");
    out.push_str("$version baldur-tl circuit simulator $end\n");
    out.push_str("$timescale 1 fs $end\n");
    let _ = writeln!(out, "$scope module {module} $end");
    let idents: Vec<String> = (0..probes.len()).map(vcd_ident).collect();
    for ((wire, _), ident) in probes.iter().zip(&idents) {
        let name = sim
            .netlist()
            .wire_name(*wire)
            .map(str::to_string)
            .unwrap_or_else(|| format!("w{}", wire.0));
        let _ = writeln!(out, "$var wire 1 {ident} {name} $end");
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");

    // Initial values: all probes start at their pre-run level (dark).
    out.push_str("$dumpvars\n");
    for ident in &idents {
        let _ = writeln!(out, "0{ident}");
    }
    out.push_str("$end\n");

    // Merge-sort all transitions by time.
    let mut events: Vec<(Fs, usize, bool)> = Vec::new();
    for (i, (_, trace)) in probes.iter().enumerate() {
        for &(t, v) in *trace {
            events.push((t, i, v));
        }
    }
    events.sort_unstable_by_key(|&(t, i, _)| (t, i));
    let mut last_t = None;
    for (t, i, v) in events {
        if last_t != Some(t) {
            let _ = writeln!(out, "#{t}");
            last_t = Some(t);
        }
        let _ = writeln!(out, "{}{}", if v { '1' } else { '0' }, idents[i]);
    }
    out
}

/// Short printable VCD identifier for index `i`.
fn vcd_ident(mut i: usize) -> String {
    // Identifiers use the printable ASCII range '!'..='~'.
    let mut s = String::new();
    loop {
        s.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

/// Renders probes as a compact ASCII timing diagram (one row per wire),
/// sampling every `step` femtoseconds — the textual stand-in for Figure 5.
pub fn to_ascii(sim: &CircuitSim, from: Fs, to: Fs, step: Fs) -> String {
    assert!(step > 0 && to > from, "invalid sampling range");
    let mut probes: Vec<(WireId, &[(Fs, bool)])> = sim.probe_iter().collect();
    probes.sort_by_key(|(w, _)| *w);
    let mut out = String::new();
    for (wire, trace) in probes {
        let name = sim
            .netlist()
            .wire_name(wire)
            .map(str::to_string)
            .unwrap_or_else(|| format!("w{}", wire.0));
        let _ = write!(out, "{name:>10} ");
        let mut t = from;
        let mut level = false;
        let mut idx = 0;
        while t < to {
            while idx < trace.len() && trace[idx].0 <= t {
                level = trace[idx].1;
                idx += 1;
            }
            out.push(if level { '█' } else { '_' });
            t += step;
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{Netlist, RunOutcome};
    use baldur_phy::waveform::Waveform;

    fn demo_sim() -> CircuitSim {
        let mut n = Netlist::new();
        let a = n.wire();
        n.name_wire(a, "stimulus");
        let b = n.not(a);
        n.name_wire(b, "inverted");
        let mut sim = CircuitSim::new(n);
        sim.probe(a);
        sim.probe(b);
        sim.drive(a, &Waveform::from_pulses([(10_000, 20_000)]));
        assert!(matches!(sim.run(1_000_000), RunOutcome::Settled { .. }));
        sim
    }

    #[test]
    fn vcd_structure_is_valid() {
        let sim = demo_sim();
        let vcd = to_vcd(&sim, "demo");
        assert!(vcd.contains("$timescale 1 fs $end"));
        assert!(vcd.contains("$var wire 1 ! stimulus $end"));
        assert!(vcd.contains("$var wire 1 \" inverted $end"));
        assert!(vcd.contains("#10000"));
        assert!(vcd.contains("#20000"));
        // The inverter's fall is one gate delay after the stimulus rise.
        assert!(vcd.contains("#11930"));
    }

    #[test]
    fn ascii_diagram_shows_the_pulse() {
        let sim = demo_sim();
        let art = to_ascii(&sim, 0, 40_000, 5_000);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("stimulus"));
        assert!(lines[0].contains('█'));
    }

    #[test]
    fn idents_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let id = vcd_ident(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(id));
        }
    }
}

//! Switch health states and their bit-error consequences.
//!
//! The Sec. IV-F reliability model ([`crate::reliability::JitterModel`])
//! gives the *healthy* per-transition error probability: the Gaussian
//! jitter tail beyond the 0.42T routing-bit margin (~1e-9). A degrading
//! TL switch — an aging laser losing extinction ratio, a drifting
//! waveguide — shows up as a *shrinking margin*, which walks that tail
//! probability up by orders of magnitude long before the switch goes
//! fully dark. [`SwitchHealth`] captures the three regimes the fault
//! plan distinguishes and maps each onto the jitter model, so transient
//! bit-error bursts injected by the network layer use physically
//! grounded probabilities rather than made-up constants.

use serde::{Deserialize, Serialize};

use crate::reliability::{normal_tail, JitterModel};

/// Operational state of one TL switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SwitchHealth {
    /// Nominal: the full 0.42T margin of the paper.
    Healthy,
    /// Degraded: the timing margin has shrunk to `margin_scale` (in
    /// `(0, 1]`) of its nominal value; bit errors become likelier as the
    /// scale falls.
    Degraded {
        /// Remaining fraction of the nominal margin.
        margin_scale: f64,
    },
    /// Dead: the switch forwards nothing (every packet through it is
    /// lost).
    Dead,
}

impl SwitchHealth {
    /// Per-transition error probability under `model`: the Gaussian tail
    /// beyond the (possibly shrunken) margin; 1.0 for a dead switch.
    pub fn error_probability(&self, model: &JitterModel) -> f64 {
        match *self {
            SwitchHealth::Healthy => model.error_probability(),
            SwitchHealth::Degraded { margin_scale } => {
                let scale = margin_scale.clamp(0.0, 1.0);
                normal_tail(model.margin_sigmas() * scale)
            }
            SwitchHealth::Dead => 1.0,
        }
    }

    /// Probability that a packet whose header exposes `transitions`
    /// routing-bit edges to this switch is corrupted (at least one edge
    /// escapes the margin): `1 - (1 - p)^transitions`.
    pub fn packet_corruption_probability(&self, model: &JitterModel, transitions: u32) -> f64 {
        let p = self.error_probability(model);
        1.0 - (1.0 - p).powi(transitions.min(i32::MAX as u32) as i32)
    }

    /// True when the switch still forwards packets at all.
    pub fn is_forwarding(&self) -> bool {
        !matches!(self, SwitchHealth::Dead)
    }
}

impl Default for SwitchHealth {
    fn default() -> Self {
        SwitchHealth::Healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_matches_the_paper_tail() {
        let m = JitterModel::paper();
        let p = SwitchHealth::Healthy.error_probability(&m);
        assert!((p / m.error_probability() - 1.0).abs() < 1e-12);
        assert!(p < 1e-8);
    }

    #[test]
    fn degradation_walks_the_tail_up_monotonically() {
        let m = JitterModel::paper();
        let mut last = SwitchHealth::Healthy.error_probability(&m);
        for scale in [0.9, 0.7, 0.5, 0.3, 0.1] {
            let p = SwitchHealth::Degraded {
                margin_scale: scale,
            }
            .error_probability(&m);
            assert!(p > last, "scale {scale}: {p:e} !> {last:e}");
            last = p;
        }
        // Half the margin is still ~2.8 sigma: errors become resolvable
        // (1e-3 class) but the switch is far from dead.
        let half = SwitchHealth::Degraded { margin_scale: 0.5 }.error_probability(&m);
        assert!(half > 1e-4 && half < 1e-2, "{half:e}");
    }

    #[test]
    fn dead_switch_corrupts_everything() {
        let m = JitterModel::paper();
        let d = SwitchHealth::Dead;
        assert!(!d.is_forwarding());
        assert!((d.error_probability(&m) - 1.0).abs() < 1e-12);
        assert!((d.packet_corruption_probability(&m, 8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn packet_corruption_scales_with_transitions() {
        let m = JitterModel::paper();
        let h = SwitchHealth::Degraded { margin_scale: 0.4 };
        let one = h.packet_corruption_probability(&m, 1);
        let eight = h.packet_corruption_probability(&m, 8);
        assert!(eight > one);
        assert!(eight < 8.0 * one + 1e-9, "union bound");
        assert!((h.packet_corruption_probability(&m, 0)).abs() < 1e-12);
    }
}

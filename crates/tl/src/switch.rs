//! The all-optical 2x2 TL switch, multiplicity 1 (paper Fig. 4(a)).
//!
//! Composition:
//!
//! * **Switch fabric** — per input: a mask-off AND (kills the first routing
//!   bit), a 132 ps waveguide delay (hides arbitration latency), and per
//!   input×output an AND gated by the grant; per output a passive combiner.
//! * **Header processing unit** — per input: a line activity detector,
//!   a valid latch and a mask-off latch (set 2.3T after packet start, reset
//!   at packet end), and a routing latch capturing the first bit by
//!   length; plus one asynchronous arbiter per output port.
//!
//! Congestion behaviour is exactly the paper's: a packet whose requested
//! output is held by the other input is *dropped* — its valid latch is
//! cleared so it can never be granted mid-packet — and the sender must
//! retransmit (handled at the network layer in `baldur-net`).

use baldur_phy::length_code::LengthCode;
use baldur_phy::packet_wave::{assemble, PacketWave};
use baldur_phy::waveform::{Fs, Waveform, BIT_PERIOD_FS};

use crate::arbiter::mutex2;
use crate::detector::{line_activity_detector, DetectorParams};
use crate::latch::sr_latch;
use crate::netlist::{CircuitSim, GateKind, Netlist, RunOutcome, WireId};

/// Switch geometry, in femtoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchParams {
    /// Line activity detector geometry.
    pub detector: DetectorParams,
    /// Fabric waveguide delay WD0/WD1 (paper: 132 ps).
    pub fabric_delay: Fs,
    /// Delay from packet start to setting the mask-off latch (paper: 2.5T
    /// for both latches; we use 2.3T so the latch output settles by 2.5T
    /// after our gate delays).
    pub mask_set_delay: Fs,
    /// Delay from packet start to setting the valid latch. Must fall after
    /// the routing latch (and its complement) are stable — otherwise a
    /// spurious request on the wrong output port fires during the sliver
    /// between valid rising and the route complement falling — and before
    /// the second routing bit's sampling window, so the sample-enable gate
    /// closes in time.
    pub valid_set_delay: Fs,
    /// Extra delay on the end-of-packet reset path so grants outlive the
    /// fabric-delayed packet tail.
    pub reset_delay: Fs,
}

impl SwitchParams {
    /// The paper's switch at 60 Gbps.
    pub fn paper() -> Self {
        let t = BIT_PERIOD_FS;
        SwitchParams {
            detector: DetectorParams::paper(),
            fabric_delay: 132_000,
            mask_set_delay: 23 * t / 10,
            valid_set_delay: 33 * t / 10,
            reset_delay: 30_000,
        }
    }
}

impl Default for SwitchParams {
    fn default() -> Self {
        SwitchParams::paper()
    }
}

/// Observable wires of one input's header-processing slice.
#[derive(Debug, Clone, Copy)]
pub struct InputTaps {
    /// Packet envelope from the line activity detector.
    pub envelope: WireId,
    /// Valid latch output.
    pub valid: WireId,
    /// Mask-off latch output.
    pub mask: WireId,
    /// Routing latch output (high = first bit was "0" = output 0).
    pub route: WireId,
    /// Request wires toward the two output arbiters.
    pub req: [WireId; 2],
}

/// Handles to a built 2x2 switch.
#[derive(Debug, Clone, Copy)]
pub struct Switch2x2 {
    /// Optical inputs.
    pub inputs: [WireId; 2],
    /// Optical outputs.
    pub outputs: [WireId; 2],
    /// Grant wires: `grants[i][j]` = input `i` granted output `j`.
    pub grants: [[WireId; 2]; 2],
    /// Per-input observability taps.
    pub taps: [InputTaps; 2],
}

/// Builds the multiplicity-1 switch into `n`, returning its handles.
pub fn build_switch(n: &mut Netlist, p: SwitchParams) -> Switch2x2 {
    let in0 = n.wire();
    let in1 = n.wire();
    n.name_wire(in0, "in0");
    n.name_wire(in1, "in1");

    let mut per_input = Vec::with_capacity(2);
    for (i, &input) in [in0, in1].iter().enumerate() {
        let det = line_activity_detector(n, input, p.detector);
        let end_d = n.waveguide(det.end_pulse, p.reset_delay);

        // Valid latch: reset by (delayed end) OR (drop); the drop wire is
        // attached after the arbiters exist.
        let valid_set = n.waveguide(det.start_pulse, p.valid_set_delay);
        let valid_reset = n.wire();
        let valid = sr_latch(n, valid_set, valid_reset);

        // Mask-off latch (set earlier than valid: it only needs to open
        // before the second routing bit arrives).
        let mask_set = n.waveguide(det.start_pulse, p.mask_set_delay);
        let mask = sr_latch(n, mask_set, end_d);

        // Routing latch: sample the data-path-delayed input in the window
        // after the first falling edge (gated by "not yet valid").
        let s_pre = n.and2(det.fall_window, det.data_delayed);
        let not_valid = n.not(valid.q);
        let s_route = n.and2(s_pre, not_valid);
        let route = sr_latch(n, s_route, end_d);

        // Fabric front half: mask off the first routing bit, then delay.
        let masked = n.and2(input, mask.q);
        let delayed = n.waveguide(masked, p.fabric_delay);

        // Requests.
        let req0 = n.and2(valid.q, route.q);
        let route_n = n.not(route.q);
        let req1 = n.and2(valid.q, route_n);

        n.name_wire(valid.q, &format!("valid{i}"));
        n.name_wire(mask.q, &format!("mask{i}"));
        n.name_wire(route.q, &format!("route{i}"));
        n.name_wire(det.envelope, &format!("env{i}"));

        per_input.push((
            det,
            end_d,
            valid_reset,
            valid,
            mask,
            route,
            delayed,
            [req0, req1],
        ));
    }

    // Arbiters: one mutex per output port.
    let m0 = mutex2(n, per_input[0].7[0], per_input[1].7[0]);
    let m1 = mutex2(n, per_input[0].7[1], per_input[1].7[1]);
    let grants = [[m0.grant0, m1.grant0], [m0.grant1, m1.grant1]];
    n.name_wire(grants[0][0], "grant00");
    n.name_wire(grants[0][1], "grant01");
    n.name_wire(grants[1][0], "grant10");
    n.name_wire(grants[1][1], "grant11");

    // Drop detection closes the valid-reset loop: input i is dropped when
    // it requests an output the other input currently holds.
    #[allow(clippy::needless_range_loop)]
    for i in 0..2 {
        let other = 1 - i;
        let req = per_input[i].7;
        let lost0 = n.and2(req[0], grants[other][0]);
        let lost1 = n.and2(req[1], grants[other][1]);
        let drop = n.or2(lost0, lost1);
        let end_d = per_input[i].1;
        let valid_reset = per_input[i].2;
        n.gate_into(
            GateKind::Or2,
            end_d,
            Some(drop),
            valid_reset,
            n.gate_delay(),
        );
    }

    // Fabric back half.
    let a00 = n.and2(per_input[0].6, grants[0][0]);
    let a01 = n.and2(per_input[0].6, grants[0][1]);
    let a10 = n.and2(per_input[1].6, grants[1][0]);
    let a11 = n.and2(per_input[1].6, grants[1][1]);
    let out0 = n.combiner(&[a00, a10]);
    let out1 = n.combiner(&[a01, a11]);
    n.name_wire(out0, "out0");
    n.name_wire(out1, "out1");

    let taps = [0, 1].map(|i| {
        let (det, _, _, valid, mask, route, _, req) = &per_input[i];
        InputTaps {
            envelope: det.envelope,
            valid: valid.q,
            mask: mask.q,
            route: route.q,
            req: *req,
        }
    });

    Switch2x2 {
        inputs: [in0, in1],
        outputs: [out0, out1],
        grants,
        taps,
    }
}

/// A packet to inject in a harness run.
#[derive(Debug, Clone)]
pub struct Injection {
    /// Which switch input (0 or 1).
    pub input: usize,
    /// Arrival instant of the first light, in femtoseconds.
    pub start: Fs,
    /// Routing bits; the first selects this switch's output.
    pub routing_bits: Vec<bool>,
    /// Payload bytes (8b/10b coded on the wire).
    pub payload: Vec<u8>,
}

/// Result of a harness run.
#[derive(Debug)]
pub struct HarnessResult {
    /// Waveforms observed at the two outputs.
    pub outputs: [Waveform; 2],
    /// The assembled input waves (for reference checks).
    pub injected: Vec<(usize, PacketWave)>,
    /// The completed simulation, for extra probing.
    pub sim: CircuitSim,
    /// The switch handles.
    pub switch: Switch2x2,
}

/// Fixed delay from switch input to output for a granted packet:
/// mask AND + fabric waveguide + output AND + combiner.
pub fn fabric_latency(p: &SwitchParams, gate_delay: Fs) -> Fs {
    gate_delay + p.fabric_delay + gate_delay + 1
}

/// Builds a switch, injects `packets`, runs to quiescence, and returns the
/// observed outputs.
///
/// # Panics
///
/// Panics if the circuit fails to settle (oscillation) or an injection is
/// malformed.
pub fn run_switch(p: SwitchParams, packets: &[Injection]) -> HarnessResult {
    let code = LengthCode::paper();
    let mut n = Netlist::new();
    let sw = build_switch(&mut n, p);
    let mut sim = CircuitSim::new(n);
    for j in 0..2 {
        sim.probe(sw.outputs[j]);
    }
    let mut horizon = 0;
    let mut injected = Vec::new();
    // Merge multiple packets per input into a single waveform.
    let mut per_input: [Vec<Fs>; 2] = [Vec::new(), Vec::new()];
    for inj in packets {
        assert!(inj.input < 2, "switch has two inputs");
        let pw = assemble(&code, &inj.routing_bits, &inj.payload, inj.start);
        horizon = horizon.max(pw.end);
        per_input[inj.input].extend_from_slice(pw.wave.transitions());
        injected.push((inj.input, pw));
    }
    for (i, mut transitions) in per_input.into_iter().enumerate() {
        if transitions.is_empty() {
            continue;
        }
        transitions.sort_unstable();
        sim.drive(sw.inputs[i], &Waveform::from_transitions(transitions));
    }
    let outcome = sim.run(horizon + 2_000_000);
    assert!(
        matches!(outcome, RunOutcome::Settled { .. }),
        "switch failed to settle"
    );
    let outputs = [sim.probed(sw.outputs[0]), sim.probed(sw.outputs[1])];
    HarnessResult {
        outputs,
        injected,
        sim,
        switch: sw,
    }
}

/// The waveform a granted packet should produce at the switch output:
/// everything from the second routing-bit slot onward, shifted by the
/// fabric latency.
pub fn expected_output(pw: &PacketWave, p: &SwitchParams, gate_delay: Fs) -> Waveform {
    let code = LengthCode::paper();
    let start = pw.wave.transitions().first().copied().unwrap_or(0);
    let masked = baldur_phy::length_code::mask_front(&pw.wave, start + code.slot());
    masked.delayed(fabric_latency(p, gate_delay))
}

/// Empirically measures the switch's misrouting rate under Gaussian
/// timing jitter of the given sigma (femtoseconds) applied independently
/// to every transition of the input packet — the circuit-level
/// counterpart of the Sec. IV-F analytical model.
///
/// Returns the fraction of trials where the packet exited the wrong port
/// (or no port). At the paper's sigma (1,237 fs) failures are ~1e-9 and
/// will not be observed; push sigma to 3,000+ fs to see the error floor
/// rise, which validates the ~0.5T decision margin.
pub fn jitter_failure_rate(p: SwitchParams, sigma_fs: f64, trials: u32, seed: u64) -> f64 {
    use baldur_sim::rng::StreamRng;
    let code = LengthCode::paper();
    let t = BIT_PERIOD_FS;
    let mut rng = StreamRng::named(seed, "jitsweep", sigma_fs.to_bits());
    let mut failures = 0u32;
    for trial in 0..trials {
        let bit = trial % 2 == 0;
        let pw = assemble(&code, &[bit, true], b"JM", 10 * t);
        let mut jittered: Vec<Fs> = pw
            .wave
            .transitions()
            .iter()
            .map(|&x| {
                let j = rng.gen_normal(0.0, sigma_fs);
                (x as i64 + j.round() as i64).max(0) as Fs
            })
            .collect();
        jittered.sort_unstable();
        jittered.dedup();
        let mut n = Netlist::new();
        let sw = build_switch(&mut n, p);
        let mut sim = CircuitSim::new(n);
        sim.probe(sw.outputs[0]);
        sim.probe(sw.outputs[1]);
        sim.drive(sw.inputs[0], &Waveform::from_transitions(jittered));
        let outcome = sim.run(pw.end + 3_000_000);
        let ok = matches!(outcome, RunOutcome::Settled { .. }) && {
            let (want, other) = if bit { (1usize, 0usize) } else { (0, 1) };
            !sim.probed(sw.outputs[want]).is_dark() && sim.probed(sw.outputs[other]).is_dark()
        };
        if !ok {
            failures += 1;
        }
    }
    f64::from(failures) / f64::from(trials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::TlGate;

    const T: u64 = 16_667;

    fn pkt(input: usize, start: Fs, bits: &[bool]) -> Injection {
        Injection {
            input,
            start,
            routing_bits: bits.to_vec(),
            payload: b"DATA".to_vec(),
        }
    }

    #[test]
    fn routes_bit0_to_output0_with_exact_waveform() {
        let p = SwitchParams::paper();
        let r = run_switch(p, &[pkt(0, 10 * T, &[false, true, false])]);
        let expect = expected_output(&r.injected[0].1, &p, TlGate::PAPER.delay_fs());
        assert_eq!(
            r.outputs[0].transitions(),
            expect.transitions(),
            "output 0 must carry the masked, delayed packet"
        );
        assert!(r.outputs[1].is_dark(), "output 1 must stay dark");
    }

    #[test]
    fn routes_bit1_to_output1() {
        let p = SwitchParams::paper();
        let r = run_switch(p, &[pkt(0, 10 * T, &[true, false, true])]);
        let expect = expected_output(&r.injected[0].1, &p, TlGate::PAPER.delay_fs());
        assert_eq!(r.outputs[1].transitions(), expect.transitions());
        assert!(r.outputs[0].is_dark());
    }

    #[test]
    fn input1_routes_symmetrically() {
        let p = SwitchParams::paper();
        let r = run_switch(p, &[pkt(1, 10 * T, &[false, false])]);
        let expect = expected_output(&r.injected[0].1, &p, TlGate::PAPER.delay_fs());
        assert_eq!(r.outputs[0].transitions(), expect.transitions());
        assert!(r.outputs[1].is_dark());
    }

    #[test]
    fn disjoint_outputs_deliver_both_packets() {
        let p = SwitchParams::paper();
        let r = run_switch(
            p,
            &[
                pkt(0, 10 * T, &[false, true]),
                pkt(1, 10 * T, &[true, true]),
            ],
        );
        let g = TlGate::PAPER.delay_fs();
        assert_eq!(
            r.outputs[0].transitions(),
            expected_output(&r.injected[0].1, &p, g).transitions()
        );
        assert_eq!(
            r.outputs[1].transitions(),
            expected_output(&r.injected[1].1, &p, g).transitions()
        );
    }

    #[test]
    fn contention_drops_exactly_one_packet() {
        let p = SwitchParams::paper();
        // Both want output 0; input 0 arrives first.
        let r = run_switch(
            p,
            &[
                pkt(0, 10 * T, &[false, true]),
                pkt(1, 12 * T, &[false, false]),
            ],
        );
        let g = TlGate::PAPER.delay_fs();
        assert_eq!(
            r.outputs[0].transitions(),
            expected_output(&r.injected[0].1, &p, g).transitions(),
            "the earlier packet must win intact"
        );
        assert!(r.outputs[1].is_dark(), "nothing leaks to the other output");
    }

    #[test]
    fn simultaneous_contention_delivers_exactly_one() {
        let p = SwitchParams::paper();
        let r = run_switch(
            p,
            &[
                pkt(0, 10 * T, &[false, true]),
                pkt(1, 10 * T, &[false, false]),
            ],
        );
        let g = TlGate::PAPER.delay_fs();
        // Tie-break is deterministic (input 0), and the winner arrives
        // unmangled.
        assert_eq!(
            r.outputs[0].transitions(),
            expected_output(&r.injected[0].1, &p, g).transitions()
        );
        assert!(r.outputs[1].is_dark());
    }

    #[test]
    fn back_to_back_packets_reuse_the_port() {
        let p = SwitchParams::paper();
        let first = pkt(0, 10 * T, &[false, true]);
        // Leave > envelope hold (6T) + reset time between packets.
        let code = LengthCode::paper();
        let pw1 = assemble(&code, &first.routing_bits, &first.payload, first.start);
        let second_start = pw1.end + 20 * T;
        let r = run_switch(p, &[first, pkt(0, second_start, &[true, true])]);
        let g = TlGate::PAPER.delay_fs();
        assert_eq!(
            r.outputs[0].transitions(),
            expected_output(&r.injected[0].1, &p, g).transitions()
        );
        assert_eq!(
            r.outputs[1].transitions(),
            expected_output(&r.injected[1].1, &p, g).transitions()
        );
    }

    #[test]
    fn loser_freed_port_goes_to_later_packet() {
        let p = SwitchParams::paper();
        let code = LengthCode::paper();
        let first = pkt(0, 10 * T, &[false, true]);
        let pw1 = assemble(&code, &first.routing_bits, &first.payload, first.start);
        // Input 1 sends to output 0 well after the first packet drains.
        let late_start = pw1.end + 30 * T;
        let r = run_switch(p, &[first, pkt(1, late_start, &[false, false])]);
        let g = TlGate::PAPER.delay_fs();
        let e0 = expected_output(&r.injected[0].1, &p, g);
        let e1 = expected_output(&r.injected[1].1, &p, g);
        let mut all: Vec<Fs> = e0
            .transitions()
            .iter()
            .chain(e1.transitions())
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(r.outputs[0].transitions(), &all[..]);
    }

    #[test]
    fn gate_count_matches_figure_4() {
        let mut n = Netlist::new();
        build_switch(&mut n, SwitchParams::paper());
        let gates = n.tl_gate_count();
        // Paper Fig. 4 caption: "only 60 TL gates" for multiplicity 1
        // (Table V budgets 64 including I/O conditioning).
        assert!(
            (55..=70).contains(&gates),
            "switch has {gates} TL gates, expected ~60"
        );
    }

    #[test]
    fn fabric_latency_close_to_table_v() {
        // Table V: 0.14 ns switch latency at multiplicity 1.
        let lat = fabric_latency(&SwitchParams::paper(), TlGate::PAPER.delay_fs());
        let ns = lat as f64 / 1e6;
        assert!((0.12..=0.15).contains(&ns), "{ns} ns");
    }

    #[test]
    fn jitter_failure_rate_rises_past_the_margin() {
        // Margin ~0.5T = 8.3 ps. At sigma = 1.24 ps (paper) failures are
        // ~1e-9: none in 12 trials. At sigma = 6 ps (margin ~1.4 sigma,
        // two routing-bit transitions exposed) misroutes are common.
        let p = SwitchParams::paper();
        let clean = jitter_failure_rate(p, 1_237.0, 12, 5);
        assert_eq!(clean, 0.0, "paper-sigma jitter must not misroute");
        let noisy = jitter_failure_rate(p, 6_000.0, 12, 5);
        assert!(noisy > 0.1, "6 ps jitter should break decodes: {noisy}");
    }

    #[test]
    fn decodes_with_gaussian_jitter_at_paper_sigma() {
        use baldur_sim::rng::StreamRng;
        let p = SwitchParams::paper();
        let code = LengthCode::paper();
        let sigma_fs = 1_237.0; // sqrt(1.53 ps^2) in fs
        let mut rng = StreamRng::named(2024, "jitter", 0);
        let mut correct = 0;
        let trials = 24;
        for trial in 0..trials {
            let bit = trial % 2 == 0;
            let pw = assemble(&code, &[bit, true], b"JT", 10 * T);
            // Jitter every transition independently (Sec. IV-F model).
            let jittered: Vec<Fs> = pw
                .wave
                .transitions()
                .iter()
                .map(|&t| {
                    let j = rng.gen_normal(0.0, sigma_fs);
                    (t as i64 + j.round() as i64).max(0) as Fs
                })
                .collect();
            let mut sorted = jittered.clone();
            sorted.sort_unstable();
            let mut n = Netlist::new();
            let sw = build_switch(&mut n, p);
            let mut sim = CircuitSim::new(n);
            sim.probe(sw.outputs[0]);
            sim.probe(sw.outputs[1]);
            sim.drive(sw.inputs[0], &Waveform::from_transitions(sorted));
            assert!(matches!(
                sim.run(pw.end + 2_000_000),
                RunOutcome::Settled { .. }
            ));
            let (want, other) = if bit { (1, 0) } else { (0, 1) };
            if !sim.probed(sw.outputs[want]).is_dark() && sim.probed(sw.outputs[other]).is_dark() {
                correct += 1;
            }
        }
        // At sigma = 1.24 ps against a >= 7 ps margin, misdecodes are
        // ~1e-9; every trial must route correctly.
        assert_eq!(correct, trials);
    }
}

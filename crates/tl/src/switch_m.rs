//! The generalized 2x2 switch with path multiplicity m (paper Sec. IV-E).
//!
//! A multiplicity-m switch has `2m` input ports (m per logical input
//! direction, fed by m different upstream switches) and `2m` output ports
//! (m per output direction). Every input port carries an independent
//! packet and gets its own line activity detector, mask-off latch, and
//! routing latch. Path arbitration is *sequential*, exactly as the paper
//! describes: each input holds a chain of m valid latches; the packet
//! first requests path port 0 of its direction, and when it loses that
//! port to another input, the loss pulse simultaneously clears the
//! current valid latch and sets the next one, moving the request to path
//! port 1, and so on. Exhausting all m paths drops the packet.
//!
//! Each output port arbitrates its up-to-2m requesters with a tournament
//! of two-input mutual-exclusion elements; the grant conditions the
//! fabric AND that releases the (132 ps-delayed, first-bit-masked) packet
//! onto that port.
//!
//! `build_switch_m` with m = 1 degenerates to the Figure 4 design of
//! [`crate::switch`]; the paper's Table V gate counts for m = 2..5 are
//! within ~25% of what this generator instantiates (the authors'
//! netlists include I/O conditioning we do not model).

// Parallel index-coupled structures (inputs x dirs x paths) read more
// clearly with explicit indices than with zipped iterators here.
#![allow(clippy::needless_range_loop)]

use baldur_phy::length_code::LengthCode;
use baldur_phy::packet_wave::{assemble, PacketWave};
use baldur_phy::waveform::{Fs, Waveform};

use crate::arbiter::mutex2;
use crate::detector::line_activity_detector;
use crate::latch::sr_latch;
use crate::netlist::{CircuitSim, GateKind, Netlist, RunOutcome, WireId};
use crate::switch::SwitchParams;

/// Handles to a built multiplicity-m switch.
#[derive(Debug, Clone)]
pub struct SwitchM {
    /// Path multiplicity.
    pub multiplicity: u32,
    /// Input ports: `inputs[side][k]`, side ∈ {0, 1}, k ∈ 0..m.
    pub inputs: Vec<Vec<WireId>>,
    /// Output ports: `outputs[dir][j]`.
    pub outputs: Vec<Vec<WireId>>,
    /// `grants[input_index][dir][j]` — input `side * m + k` granted output
    /// `(dir, j)`.
    pub grants: Vec<Vec<Vec<WireId>>>,
    /// Per-input valid-chain outputs, for observability:
    /// `valids[input_index][j]`.
    pub valids: Vec<Vec<WireId>>,
}

/// An n-way mutual-exclusion element built as a tournament of
/// [`mutex2`] pairs. Returns one grant wire per requester; at most one is
/// high at any instant.
fn mutex_tree(n: &mut Netlist, reqs: &[WireId]) -> Vec<WireId> {
    match reqs.len() {
        0 => Vec::new(),
        1 => {
            // A single requester wins whenever it asks (buffer through two
            // inverters to keep grant timing comparable).
            let a = n.not(reqs[0]);
            vec![n.not(a)]
        }
        2 => {
            let m = mutex2(n, reqs[0], reqs[1]);
            vec![m.grant0, m.grant1]
        }
        _ => {
            let half = reqs.len().div_ceil(2);
            let left = mutex_tree_side(n, &reqs[..half]);
            let right = mutex_tree_side(n, &reqs[half..]);
            let final_m = mutex2(n, left.any, right.any);
            let mut grants = Vec::with_capacity(reqs.len());
            for g in left.grants {
                grants.push(n.and2(g, final_m.grant0));
            }
            for g in right.grants {
                grants.push(n.and2(g, final_m.grant1));
            }
            grants
        }
    }
}

struct TreeSide {
    grants: Vec<WireId>,
    any: WireId,
}

fn mutex_tree_side(n: &mut Netlist, reqs: &[WireId]) -> TreeSide {
    let grants = mutex_tree(n, reqs);
    let any = match grants.len() {
        1 => grants[0],
        _ => {
            let mut acc = grants[0];
            for &g in &grants[1..] {
                acc = n.or2(acc, g);
            }
            acc
        }
    };
    TreeSide { grants, any }
}

/// Builds the multiplicity-m switch into `n`.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn build_switch_m(n: &mut Netlist, p: SwitchParams, m: u32) -> SwitchM {
    assert!(m >= 1, "multiplicity must be at least 1");
    let m = m as usize;
    let n_inputs = 2 * m;

    // Input ports.
    let inputs: Vec<Vec<WireId>> = (0..2)
        .map(|side| {
            (0..m)
                .map(|k| {
                    let w = n.wire();
                    n.name_wire(w, &format!("in{side}_{k}"));
                    w
                })
                .collect()
        })
        .collect();

    // Per-input header slices.
    struct InputSlice {
        delayed: WireId,   // masked + fabric-delayed packet
        dir: [WireId; 2],  // direction-select (route / not route)
        end_d: WireId,     // delayed end-of-packet reset
        valid_set: WireId, // initial valid set pulse
    }
    let mut slices = Vec::with_capacity(n_inputs);
    for side in 0..2 {
        for k in 0..m {
            let input = inputs[side][k];
            let det = line_activity_detector(n, input, p.detector);
            let end_d = n.waveguide(det.end_pulse, p.reset_delay);
            let valid_set = n.waveguide(det.start_pulse, p.valid_set_delay);
            let mask_set = n.waveguide(det.start_pulse, p.mask_set_delay);
            let mask = sr_latch(n, mask_set, end_d);

            // Routing latch gated by "no valid in the chain yet": use the
            // first chain latch's complement, set later; simplest correct
            // gate is a dedicated pre-valid latch mirroring valid_set.
            let prevalid = sr_latch(n, valid_set, end_d);
            let s_pre = n.and2(det.fall_window, det.data_delayed);
            let not_pv = prevalid.qb;
            let s_route = n.and2(s_pre, not_pv);
            let route = sr_latch(n, s_route, end_d);
            let route_n = n.not(route.q);

            let masked = n.and2(input, mask.q);
            let delayed = n.waveguide(masked, p.fabric_delay);
            slices.push(InputSlice {
                delayed,
                dir: [route.q, route_n],
                end_d,
                valid_set,
            });
        }
    }

    // Valid chains: V[input][level]. The set wire of level j > 0 is the
    // loss pulse of level j - 1, attached after arbitration exists; model
    // that with pre-created set wires driven later via gate_into.
    let mut valid = Vec::with_capacity(n_inputs);
    let mut chain_set_wires: Vec<Vec<WireId>> = Vec::with_capacity(n_inputs);
    let mut chain_reset_wires: Vec<Vec<WireId>> = Vec::with_capacity(n_inputs);
    for slice in &slices {
        let mut levels = Vec::with_capacity(m);
        let mut sets = Vec::with_capacity(m);
        let mut resets = Vec::with_capacity(m);
        for j in 0..m {
            let set = if j == 0 {
                slice.valid_set
            } else {
                n.wire() // driven by the level j-1 loss pulse, later
            };
            // Reset: end-of-packet OR lost-at-this-level (wire driven
            // later).
            let lost_here = n.wire();
            let reset = n.or2(slice.end_d, lost_here);
            let l = sr_latch(n, set, reset);
            levels.push(l);
            sets.push(set);
            resets.push(lost_here);
        }
        valid.push(levels);
        chain_set_wires.push(sets);
        chain_reset_wires.push(resets);
    }

    // Requests: req[input][dir][level] = valid_level AND dir-select.
    let mut req: Vec<[Vec<WireId>; 2]> = (0..n_inputs)
        .map(|_| [Vec::with_capacity(m), Vec::with_capacity(m)])
        .collect();
    for (i, slice) in slices.iter().enumerate() {
        for d in 0..2 {
            for j in 0..m {
                let r = n.and2(valid[i][j].q, slice.dir[d]);
                req[i][d].push(r);
            }
        }
    }

    // Arbitration: one mutex tree per output port (d, j) over all inputs.
    // grants[i][d][j].
    let mut grants = vec![vec![vec![WireId(u32::MAX); m]; 2]; n_inputs];
    let mut port_grant_lists: Vec<Vec<Vec<WireId>>> = vec![vec![Vec::new(); m]; 2];
    for d in 0..2 {
        for j in 0..m {
            let reqs: Vec<WireId> = (0..n_inputs).map(|i| req[i][d][j]).collect();
            let gs = mutex_tree(n, &reqs);
            for (i, g) in gs.iter().enumerate() {
                grants[i][d][j] = *g;
                n.name_wire(*g, &format!("g_i{i}_d{d}_p{j}"));
            }
            port_grant_lists[d][j] = gs;
        }
    }

    // Loss pulses close the valid chains: input i lost level j when it
    // requests (d, j) while that port is granted to someone else.
    for i in 0..n_inputs {
        for j in 0..m {
            // other_grant(d, j) = OR of everyone else's grants there.
            let mut lost_d = Vec::with_capacity(2);
            for d in 0..2 {
                let mut other: Option<WireId> = None;
                for (x, &g) in port_grant_lists[d][j].iter().enumerate() {
                    if x == i {
                        continue;
                    }
                    other = Some(match other {
                        None => g,
                        Some(acc) => n.or2(acc, g),
                    });
                }
                let other = other.expect("at least one other input");
                lost_d.push(n.and2(req[i][d][j], other));
            }
            let lost = n.or2(lost_d[0], lost_d[1]);
            // Drive this level's reset, and the next level's set.
            let delay = n.gate_delay();
            n.gate_into(
                GateKind::Or2,
                lost,
                Some(lost),
                chain_reset_wires[i][j],
                delay,
            );
            if j + 1 < m {
                n.gate_into(
                    GateKind::Or2,
                    lost,
                    Some(lost),
                    chain_set_wires[i][j + 1],
                    delay,
                );
            }
        }
    }

    // Fabric: outputs[d][j] = combiner over AND(delayed_i, grant_i_d_j).
    let outputs: Vec<Vec<WireId>> = (0..2)
        .map(|d| {
            (0..m)
                .map(|j| {
                    let legs: Vec<WireId> = (0..n_inputs)
                        .map(|i| n.and2(slices[i].delayed, grants[i][d][j]))
                        .collect();
                    let out = n.combiner(&legs);
                    n.name_wire(out, &format!("out{d}_{j}"));
                    out
                })
                .collect()
        })
        .collect();

    SwitchM {
        multiplicity: m as u32,
        inputs,
        outputs,
        grants,
        valids: valid
            .iter()
            .map(|levels| levels.iter().map(|l| l.q).collect())
            .collect(),
    }
}

/// A packet to inject into a multiplicity-m switch harness.
#[derive(Debug, Clone)]
pub struct InjectionM {
    /// Input side (0 or 1).
    pub side: usize,
    /// Input port within the side (0..m).
    pub port: usize,
    /// First-light instant, fs.
    pub start: Fs,
    /// Routing bits (first selects this switch's direction).
    pub routing_bits: Vec<bool>,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Harness result: the waveform observed on every output port.
#[derive(Debug)]
pub struct HarnessMResult {
    /// `outputs[dir][j]`.
    pub outputs: Vec<Vec<Waveform>>,
    /// The assembled input waves.
    pub injected: Vec<PacketWave>,
    /// The completed simulation.
    pub sim: CircuitSim,
    /// Switch handles.
    pub switch: SwitchM,
}

impl HarnessMResult {
    /// Output ports of `dir` that carried any light.
    pub fn lit_ports(&self, dir: usize) -> Vec<usize> {
        self.outputs[dir]
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.is_dark())
            .map(|(j, _)| j)
            .collect()
    }

    /// Count of packets that exited on direction `dir` (each lit port
    /// carries at most one packet in the test scenarios).
    pub fn delivered(&self, dir: usize) -> usize {
        self.lit_ports(dir).len()
    }
}

/// Builds a multiplicity-m switch, injects `packets`, runs to quiescence.
///
/// # Panics
///
/// Panics on malformed injections or a non-settling circuit.
pub fn run_switch_m(p: SwitchParams, m: u32, packets: &[InjectionM]) -> HarnessMResult {
    let code = LengthCode::paper();
    let mut n = Netlist::new();
    let sw = build_switch_m(&mut n, p, m);
    let mut sim = CircuitSim::new(n);
    for d in 0..2 {
        for j in 0..m as usize {
            sim.probe(sw.outputs[d][j]);
        }
    }
    let mut horizon = 0;
    let mut injected = Vec::new();
    for inj in packets {
        assert!(inj.side < 2 && inj.port < m as usize, "bad input port");
        let pw = assemble(&code, &inj.routing_bits, &inj.payload, inj.start);
        horizon = horizon.max(pw.end);
        sim.drive(sw.inputs[inj.side][inj.port], &pw.wave);
        injected.push(pw);
    }
    let outcome = sim.run(horizon + 3_000_000);
    assert!(
        matches!(outcome, RunOutcome::Settled { .. }),
        "m={m} switch failed to settle"
    );
    let outputs = (0..2)
        .map(|d| {
            (0..m as usize)
                .map(|j| sim.probed(sw.outputs[d][j]))
                .collect()
        })
        .collect();
    HarnessMResult {
        outputs,
        injected,
        sim,
        switch: sw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::TlGate;
    use crate::switch::expected_output;

    const T: u64 = 16_667;

    fn pkt(side: usize, port: usize, start: Fs, bits: &[bool]) -> InjectionM {
        InjectionM {
            side,
            port,
            start,
            routing_bits: bits.to_vec(),
            payload: b"DATA".to_vec(),
        }
    }

    #[test]
    fn m1_degenerates_to_the_basic_switch() {
        let p = SwitchParams::paper();
        let r = run_switch_m(p, 1, &[pkt(0, 0, 10 * T, &[false, true])]);
        assert_eq!(r.delivered(0), 1);
        assert_eq!(r.delivered(1), 0);
    }

    #[test]
    fn m2_single_packet_takes_path_0_with_exact_waveform() {
        let p = SwitchParams::paper();
        let r = run_switch_m(p, 2, &[pkt(0, 0, 10 * T, &[false, true])]);
        assert_eq!(r.lit_ports(0), vec![0], "uncontended packet uses path 0");
        let expect = expected_output(&r.injected[0], &p, TlGate::PAPER.delay_fs());
        assert_eq!(
            r.outputs[0][0].transitions(),
            expect.transitions(),
            "masked, delayed packet must arrive intact"
        );
        assert_eq!(r.delivered(1), 0);
    }

    #[test]
    fn m2_two_contenders_both_delivered_on_different_paths() {
        // The whole point of multiplicity: what would be a drop at m=1 is
        // a second-path delivery at m=2.
        let p = SwitchParams::paper();
        let r = run_switch_m(
            p,
            2,
            &[
                pkt(0, 0, 10 * T, &[false, true]),
                pkt(1, 0, 10 * T, &[false, false]),
            ],
        );
        assert_eq!(r.delivered(0), 2, "lit ports: {:?}", r.lit_ports(0));
        assert_eq!(r.delivered(1), 0);
    }

    #[test]
    fn m2_three_contenders_drop_exactly_one() {
        let p = SwitchParams::paper();
        let r = run_switch_m(
            p,
            2,
            &[
                pkt(0, 0, 10 * T, &[false, true]),
                pkt(0, 1, 10 * T, &[false, false]),
                pkt(1, 0, 11 * T, &[false, true]),
            ],
        );
        assert_eq!(r.delivered(0), 2, "two paths exist, two survive");
        assert_eq!(r.delivered(1), 0);
    }

    #[test]
    fn m2_disjoint_directions_do_not_interact() {
        let p = SwitchParams::paper();
        let r = run_switch_m(
            p,
            2,
            &[
                pkt(0, 0, 10 * T, &[false, true]),
                pkt(0, 1, 10 * T, &[true, false]),
                pkt(1, 0, 10 * T, &[true, true]),
            ],
        );
        assert_eq!(r.delivered(0), 1);
        assert_eq!(r.delivered(1), 2);
    }

    #[test]
    fn m3_four_contenders_drop_exactly_one() {
        let p = SwitchParams::paper();
        let r = run_switch_m(
            p,
            3,
            &[
                pkt(0, 0, 10 * T, &[false]),
                pkt(0, 1, 10 * T, &[false]),
                pkt(0, 2, 11 * T, &[false]),
                pkt(1, 0, 11 * T, &[false]),
            ],
        );
        assert_eq!(r.delivered(0), 3, "three paths exist, three survive");
    }

    #[test]
    fn staggered_arrivals_reuse_freed_paths() {
        let p = SwitchParams::paper();
        let code = LengthCode::paper();
        let first = pkt(0, 0, 10 * T, &[false, true]);
        let pw = assemble(&code, &first.routing_bits, &first.payload, first.start);
        // Second packet arrives long after the first drains: path 0 again.
        let r = run_switch_m(p, 2, &[first, pkt(1, 0, pw.end + 30 * T, &[false, false])]);
        let port0 = &r.outputs[0][0];
        // Both packets on path 0, sequentially; path 1 never used.
        assert!(!port0.is_dark());
        assert!(r.outputs[0][1].is_dark(), "{:?}", r.lit_ports(0));
    }

    #[test]
    fn gate_counts_track_table_v() {
        use crate::gate_count::TABLE_V_GATES;
        for m in 1..=3u32 {
            let mut n = Netlist::new();
            build_switch_m(&mut n, SwitchParams::paper(), m);
            let gates = n.tl_gate_count();
            let paper = TABLE_V_GATES[(m - 1) as usize];
            let ratio = gates as f64 / paper as f64;
            assert!(
                (0.5..=1.5).contains(&ratio),
                "m={m}: {gates} gates vs paper {paper}"
            );
        }
    }

    #[test]
    fn grants_are_exclusive_per_port() {
        // Run the contended scenario and check grant exclusivity on every
        // output port at every recorded edge.
        let p = SwitchParams::paper();
        let mut n = Netlist::new();
        let sw = build_switch_m(&mut n, p, 2);
        let mut sim = CircuitSim::new(n);
        let code = LengthCode::paper();
        let mut grant_wires = Vec::new();
        for i in 0..4 {
            for d in 0..2 {
                for j in 0..2 {
                    sim.probe(sw.grants[i][d][j]);
                    grant_wires.push((i, d, j, sw.grants[i][d][j]));
                }
            }
        }
        let a = assemble(&code, &[false, true], b"AA", 10 * T);
        let b = assemble(&code, &[false, false], b"BB", 10 * T);
        let c = assemble(&code, &[false, true], b"CC", 12 * T);
        sim.drive(sw.inputs[0][0], &a.wave);
        sim.drive(sw.inputs[0][1], &b.wave);
        sim.drive(sw.inputs[1][0], &c.wave);
        let out = sim.run(a.end.max(b.end).max(c.end) + 3_000_000);
        assert!(matches!(out, RunOutcome::Settled { .. }));
        // Collect all transition instants, then assert <= 1 grant high per
        // port at each.
        let mut edges: Vec<Fs> = Vec::new();
        for &(_, _, _, w) in &grant_wires {
            edges.extend_from_slice(sim.probed(w).transitions());
        }
        edges.sort_unstable();
        edges.dedup();
        for &e in &edges {
            for d in 0..2 {
                for j in 0..2 {
                    let high: usize = (0..4)
                        .filter(|&i| sim.probed(sw.grants[i][d][j]).level_at(e))
                        .count();
                    assert!(high <= 1, "port ({d},{j}) at {e}: {high} grants");
                }
            }
        }
    }
}

//! TL device and circuit parameters (paper Tables III and IV).
//!
//! The paper characterizes the transistor laser at a near-future technology
//! node using Keysight ADS and reduces every optical logic gate — inverter,
//! NAND, NOR, AND, OR, of up to two inputs — to the same figures of merit
//! (Table IV), because the single output TL is the speed/power-limiting
//! element. All downstream analyses consume the device only through these
//! numbers, which is what makes a software reproduction possible.

use serde::{Deserialize, Serialize};

/// Femtoseconds per picosecond (the circuit simulator tick is 1 fs).
pub const FS_PER_PS: u64 = 1_000;

/// Table IV figures of merit for a TL logic gate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TlGate {
    /// Gate footprint (µm²).
    pub area_um2: f64,
    /// Optical rise/fall time (ps).
    pub rise_fall_ps: f64,
    /// Propagation delay (ps).
    pub delay_ps: f64,
    /// Static power (mW). TL power is dominated by static bias current and
    /// is effectively independent of data rate and activity factor.
    pub power_mw: f64,
    /// Supported data rate (Gbps).
    pub data_rate_gbps: f64,
}

impl TlGate {
    /// The paper's Table IV values.
    pub const PAPER: TlGate = TlGate {
        area_um2: 25.0,
        rise_fall_ps: 7.3,
        delay_ps: 1.93,
        power_mw: 0.406,
        data_rate_gbps: 60.0,
    };

    /// Energy per bit at the rated data rate, in femtojoules.
    ///
    /// The paper quotes 6.77 fJ/bit (0.406 mW at 60 Gbps).
    pub fn energy_per_bit_fj(&self) -> f64 {
        // mW / Gbps = pJ/bit; ×1000 = fJ/bit.
        self.power_mw / self.data_rate_gbps * 1_000.0
    }

    /// Gate delay in femtoseconds (the circuit simulator unit).
    pub fn delay_fs(&self) -> u64 {
        (self.delay_ps * FS_PER_PS as f64).round() as u64
    }

    /// A TL latch is two cross-coupled NOR gates, so it consumes twice the
    /// gate power (Sec. III).
    pub fn latch_power_mw(&self) -> f64 {
        2.0 * self.power_mw
    }

    /// Bit period T at the rated data rate, in femtoseconds.
    pub fn bit_period_fs(&self) -> u64 {
        (1.0e6 / self.data_rate_gbps).round() as u64
    }
}

impl Default for TlGate {
    fn default() -> Self {
        TlGate::PAPER
    }
}

/// Table III device parameters, kept for documentation and the device-level
/// sanity tests (they do not enter the network-level models directly).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TlDevice {
    /// Junction capacitance (fF).
    pub junction_capacitance_ff: f64,
    /// Spontaneous recombination lifetime (ps).
    pub recombination_lifetime_ps: f64,
    /// Photon lifetime (ps).
    pub photon_lifetime_ps: f64,
    /// Emission wavelength (nm).
    pub wavelength_nm: f64,
    /// Laser threshold current (mA).
    pub threshold_current_ma: f64,
    /// Bias current (mA).
    pub bias_current_ma: f64,
}

impl TlDevice {
    /// The paper's Table III values.
    pub const PAPER: TlDevice = TlDevice {
        junction_capacitance_ff: 100.0,
        recombination_lifetime_ps: 37.0,
        photon_lifetime_ps: 2.72,
        wavelength_nm: 980.0,
        threshold_current_ma: 0.1,
        bias_current_ma: 0.2,
    };
}

impl Default for TlDevice {
    fn default() -> Self {
        TlDevice::PAPER
    }
}

/// Power ratio of a TL gate versus a 32 nm CMOS gate, as referenced in the
/// paper's motivation (">100X higher power ... at the current technology
/// node"). Exposed so the power model's comparisons can cite one constant.
pub const TL_VS_CMOS_POWER_RATIO: f64 = 100.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_per_bit_matches_paper() {
        let e = TlGate::PAPER.energy_per_bit_fj();
        assert!((e - 6.77).abs() < 0.01, "got {e} fJ/bit, paper says 6.77");
    }

    #[test]
    fn delay_and_bit_period_in_fs() {
        assert_eq!(TlGate::PAPER.delay_fs(), 1_930);
        // 60 Gbps => T = 16.667 ps = 16,667 fs, matching baldur-phy.
        assert_eq!(TlGate::PAPER.bit_period_fs(), 16_667);
        assert_eq!(
            TlGate::PAPER.bit_period_fs(),
            baldur_phy::waveform::BIT_PERIOD_FS
        );
    }

    #[test]
    fn latch_is_two_gates() {
        assert!((TlGate::PAPER.latch_power_mw() - 0.812).abs() < 1e-12);
    }

    #[test]
    fn gate_is_much_faster_than_bit_period() {
        // The switch design relies on several gate delays fitting inside
        // fractions of T (e.g. the 0.4T detector window).
        let g = TlGate::PAPER;
        assert!(g.delay_fs() * 4 < g.bit_period_fs());
    }
}

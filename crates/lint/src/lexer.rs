//! A spanned Rust lexer for the lint engine.
//!
//! [`lex`] splits a source file into a *complete* sequence of tokens: every
//! byte of the input belongs to exactly one token, so concatenating the
//! token texts reproduces the file verbatim (a property test in
//! `tests/engine.rs` enforces this over the whole workspace). Rule passes
//! then match on [`Kind::Ident`]/[`Kind::Punct`] tokens and are immune by
//! construction to the failure modes of the old line-regex core: patterns
//! inside string literals (including raw strings with `unwrap(` in them),
//! nested block comments, `'a` lifetimes next to `'x'` char literals, and
//! expressions split across lines.
//!
//! The lexer is deliberately forgiving: unterminated literals run to end of
//! file and unknown bytes become one-byte [`Kind::Punct`] tokens, because a
//! linter must never panic on the code it judges.

/// Token classification. Trivia ([`Kind::Ws`], the comment kinds) is kept
/// in the stream for lossless reassembly and filtered out before rule
/// matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Whitespace run.
    Ws,
    /// `// ...` (and `/// ...`) to end of line, newline excluded.
    LineComment,
    /// `/* ... */`, nesting-aware.
    BlockComment,
    /// Identifier or keyword (also raw identifiers like `r#type`).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// A char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// A string literal of any flavour: `"…"`, `b"…"`, `r#"…"#`.
    Str,
    /// An integer literal, suffix included (`42`, `0xFF_u32`).
    Int,
    /// A float literal, suffix included (`1.0`, `2e-3`, `1f64`).
    Float,
    /// Operator or delimiter, maximal-munch (`..=` is one token).
    Punct,
}

/// One token: classification plus the byte span and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: Kind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Token {
    /// The token's text, sliced from the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// True for bytes that can begin an identifier. Non-ASCII bytes are
/// treated as identifier material so multi-byte UTF-8 stays intact.
fn ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

/// True for bytes that can continue an identifier.
fn ident_continue(b: u8) -> bool {
    ident_start(b) || b.is_ascii_digit()
}

/// Multi-byte operators, longest first so maximal munch works by scanning
/// the table in order.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "&&", "||", "<<", ">>", "<=", ">=", "==", "!=", "+=", "-=", "*=",
    "/=", "%=", "^=", "&=", "|=", "::", "->", "=>", "..",
];

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    /// The last significant token was a lone `.` (tuple-index context).
    after_dot: bool,
}

impl<'a> Lexer<'a> {
    fn peek(&self, off: usize) -> Option<u8> {
        self.b.get(self.i + off).copied()
    }

    /// Advances one byte, counting newlines.
    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line += 1;
        }
        self.i += 1;
    }

    /// Advances `n` bytes, counting newlines.
    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn whitespace(&mut self) -> Kind {
        while self.peek(0).is_some_and(|c| c.is_ascii_whitespace()) {
            self.bump();
        }
        Kind::Ws
    }

    fn line_comment(&mut self) -> Kind {
        while self.peek(0).is_some_and(|c| c != b'\n') {
            self.bump();
        }
        Kind::LineComment
    }

    fn block_comment(&mut self) -> Kind {
        self.bump_n(2);
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => break,
            }
        }
        Kind::BlockComment
    }

    /// Consumes a `"..."` body starting at the opening quote.
    fn quoted_string(&mut self) -> Kind {
        self.bump();
        loop {
            match self.peek(0) {
                Some(b'\\') => self.bump_n(2),
                Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
                None => break,
            }
        }
        Kind::Str
    }

    /// Consumes `r"…"`/`r#"…"#` starting at the `r` (hash count already
    /// known). The prefix length up to and including the opening quote is
    /// `prefix`.
    fn raw_string(&mut self, prefix: usize, hashes: usize) -> Kind {
        self.bump_n(prefix);
        loop {
            match self.peek(0) {
                Some(b'"') => {
                    let closed = (1..=hashes).all(|k| self.peek(k) == Some(b'#'));
                    self.bump();
                    if closed {
                        self.bump_n(hashes);
                        break;
                    }
                }
                Some(_) => self.bump(),
                None => break,
            }
        }
        Kind::Str
    }

    fn ident(&mut self) -> Kind {
        while self.peek(0).is_some_and(ident_continue) {
            self.bump();
        }
        Kind::Ident
    }

    /// At a `'`: char literal, byte-char tail, or lifetime.
    fn char_or_lifetime(&mut self) -> Kind {
        match self.peek(1) {
            // Escaped char: `'\n'`, `'\u{1F600}'` — find the close quote
            // within a short window (escapes are at most 10 bytes).
            Some(b'\\') => {
                for k in 3..14 {
                    if self.peek(k) == Some(b'\'') {
                        self.bump_n(k + 1);
                        return Kind::Char;
                    }
                }
                self.bump();
                Kind::Punct
            }
            Some(c) if ident_start(c) || c.is_ascii_digit() => {
                // `'x'` is a char; `'x` (no close after one character) is
                // a lifetime. Multi-byte chars advance by their UTF-8 len.
                let char_len = match c {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                if self.peek(1 + char_len) == Some(b'\'') {
                    self.bump_n(char_len + 2);
                    Kind::Char
                } else {
                    self.bump();
                    while self.peek(0).is_some_and(ident_continue) {
                        self.bump();
                    }
                    Kind::Lifetime
                }
            }
            // `'('`, `' '` and friends — anything but a quote or newline.
            Some(c) if c != b'\'' && c != b'\n' => {
                if self.peek(2) == Some(b'\'') {
                    self.bump_n(3);
                    Kind::Char
                } else {
                    self.bump();
                    Kind::Punct
                }
            }
            _ => {
                self.bump();
                Kind::Punct
            }
        }
    }

    fn number(&mut self) -> Kind {
        // Right after a `.` a digit run is a tuple index (`t.0`, `x.1.2`),
        // never a float literal.
        if self.after_dot {
            while self.peek(0).is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
            return Kind::Int;
        }
        let mut float = false;
        if self.peek(0) == Some(b'0') && matches!(self.peek(1), Some(b'x' | b'o' | b'b')) {
            self.bump_n(2);
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_hexdigit() || c == b'_')
            {
                self.bump();
            }
        } else {
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_digit() || c == b'_')
            {
                self.bump();
            }
            // A decimal point only belongs to the number when it is not a
            // range (`1..2`) or a field/method access (`x.0.1` tuples are
            // lexed as separate tokens after the dot).
            if self.peek(0) == Some(b'.') {
                match self.peek(1) {
                    Some(c) if c.is_ascii_digit() => {
                        float = true;
                        self.bump();
                        while self
                            .peek(0)
                            .is_some_and(|c| c.is_ascii_digit() || c == b'_')
                        {
                            self.bump();
                        }
                    }
                    Some(c) if c == b'.' || ident_start(c) => {}
                    _ => {
                        // Trailing-dot float `1.`
                        float = true;
                        self.bump();
                    }
                }
            }
            // Exponent: `1e9`, `2.5E-3`.
            if matches!(self.peek(0), Some(b'e' | b'E')) {
                let (skip, digit) = match self.peek(1) {
                    Some(b'+' | b'-') => (2, self.peek(2)),
                    other => (1, other),
                };
                if digit.is_some_and(|c| c.is_ascii_digit()) {
                    float = true;
                    self.bump_n(skip);
                    while self
                        .peek(0)
                        .is_some_and(|c| c.is_ascii_digit() || c == b'_')
                    {
                        self.bump();
                    }
                }
            }
        }
        // Suffix: `u64`, `f32`, `usize` … (any identifier tail).
        let suffix_start = self.i;
        while self.peek(0).is_some_and(ident_continue) {
            self.bump();
        }
        let is_float_suffix = self
            .b
            .get(suffix_start..self.i)
            .is_some_and(|s| s == b"f32" || s == b"f64");
        if float || is_float_suffix {
            Kind::Float
        } else {
            Kind::Int
        }
    }

    fn punct(&mut self) -> Kind {
        for p in PUNCTS {
            let pb = p.as_bytes();
            if self.b.len() >= self.i + pb.len() && self.b[self.i..].starts_with(pb) {
                self.bump_n(pb.len());
                return Kind::Punct;
            }
        }
        self.bump();
        Kind::Punct
    }

    /// Handles the `r`/`b`/`br` prefixes that can start a raw string, byte
    /// string, byte char, or raw identifier; falls back to a plain ident.
    fn r_or_b(&mut self) -> Kind {
        let first = self.peek(0);
        // `j` = index just past the prefix letters: 1 for `r`/`b`, 2 for `br`.
        let j = if first == Some(b'b') && self.peek(1) == Some(b'r') {
            2
        } else {
            1
        };
        let raw = first == Some(b'r') || j == 2;
        if raw {
            let mut hashes = 0usize;
            while self.peek(j + hashes) == Some(b'#') {
                hashes += 1;
            }
            if self.peek(j + hashes) == Some(b'"') {
                return self.raw_string(j + hashes + 1, hashes);
            }
            // Raw identifier `r#foo` (only the plain-`r` form exists).
            if first == Some(b'r') && hashes == 1 && self.peek(2).is_some_and(ident_start) {
                self.bump_n(2);
                return self.ident();
            }
        } else {
            // `b"…"` or `b'…'`.
            if self.peek(1) == Some(b'"') {
                self.bump();
                return self.quoted_string();
            }
            if self.peek(1) == Some(b'\'') {
                self.bump();
                return self.char_or_lifetime();
            }
        }
        self.ident()
    }
}

/// Lexes `src` into a lossless token stream (trivia included).
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        after_dot: false,
    };
    let mut out = Vec::new();
    while let Some(c) = lx.peek(0) {
        let start = lx.i;
        let line = lx.line;
        let kind = if c.is_ascii_whitespace() {
            lx.whitespace()
        } else if c == b'/' && lx.peek(1) == Some(b'/') {
            lx.line_comment()
        } else if c == b'/' && lx.peek(1) == Some(b'*') {
            lx.block_comment()
        } else if c == b'r' || c == b'b' {
            lx.r_or_b()
        } else if ident_start(c) {
            lx.ident()
        } else if c.is_ascii_digit() {
            lx.number()
        } else if c == b'"' {
            lx.quoted_string()
        } else if c == b'\'' {
            lx.char_or_lifetime()
        } else {
            lx.punct()
        };
        debug_assert!(lx.i > start, "lexer must always advance");
        if lx.i == start {
            // Defensive: never loop forever on a byte we failed to class.
            lx.bump();
        }
        if !matches!(kind, Kind::Ws | Kind::LineComment | Kind::BlockComment) {
            lx.after_dot = kind == Kind::Punct && &lx.b[start..lx.i] == b".";
        }
        out.push(Token {
            kind,
            start,
            end: lx.i,
            line,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(Kind, &str)> {
        lex(src)
            .iter()
            .filter(|t| !matches!(t.kind, Kind::Ws | Kind::LineComment | Kind::BlockComment))
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn roundtrip(src: &str) {
        let got: String = lex(src).iter().map(|t| t.text(src)).collect();
        assert_eq!(got, src);
    }

    #[test]
    fn reassembly_is_lossless() {
        for src in [
            "fn main() { let x = 1; }\n",
            "let s = r#\"has \"quotes\" and unwrap( inside\"#;\n",
            "/* outer /* inner */ still comment */ let y = 'a';\n",
            "let c: char = 'x'; fn f<'a>(s: &'a str) {}\n",
            "let f = 1.0e-3_f64; let h = 0xFF_u32; let r = 0..=10;\n",
            "let b = b\"bytes\"; let bc = b'\\n'; let emoji = '\\u{1F600}';\n",
            "x.unwrap\n    ();\n",
            "весь мир 'λ' идент\n",
            "let t = (1, 2); let v = t.0;\n",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn raw_strings_hide_their_contents_from_ident_matching() {
        let src = "let s = r#\"x.unwrap() Instant::now\"#; let ok = 1;\n";
        let ts = texts(src);
        assert!(ts
            .iter()
            .any(|(k, t)| *k == Kind::Str && t.contains("unwrap")));
        assert!(!ts.iter().any(|(k, t)| *k == Kind::Ident && *t == "unwrap"));
        roundtrip(src);
    }

    #[test]
    fn lifetimes_and_chars_are_distinguished() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }\n";
        let ts = texts(src);
        assert!(ts.contains(&(Kind::Lifetime, "'a")));
        assert!(ts.contains(&(Kind::Char, "'x'")));
        roundtrip(src);
    }

    #[test]
    fn numeric_literals_classify_with_suffixes() {
        let ts = texts("let a = 1.5; let b = 2e3; let c = 7u64; let d = 1f64; let e = 0b1010;");
        assert!(ts.contains(&(Kind::Float, "1.5")));
        assert!(ts.contains(&(Kind::Float, "2e3")));
        assert!(ts.contains(&(Kind::Int, "7u64")));
        assert!(ts.contains(&(Kind::Float, "1f64")));
        assert!(ts.contains(&(Kind::Int, "0b1010")));
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let ts = texts("for i in 0..10 { } for f in 0.0..=1.0 { }");
        assert!(ts.contains(&(Kind::Int, "0")));
        assert!(ts.contains(&(Kind::Punct, "..")));
        assert!(ts.contains(&(Kind::Float, "0.0")));
        assert!(ts.contains(&(Kind::Punct, "..=")));
        assert!(ts.contains(&(Kind::Float, "1.0")));
    }

    #[test]
    fn tuple_field_access_is_not_a_float() {
        let ts = texts("let v = t.0; let w = x.1.2;");
        assert!(ts.contains(&(Kind::Int, "0")));
        assert!(!ts.iter().any(|(k, _)| *k == Kind::Float));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "let a = 1;\n/* c\nc */ \"s\ns\" x\n";
        let toks = lex(src);
        let x = toks
            .iter()
            .find(|t| t.kind == Kind::Ident && t.text(src) == "x")
            .expect("x token");
        assert_eq!(x.line, 4);
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        roundtrip("let s = \"never closed");
        roundtrip("let r = r#\"never closed");
        roundtrip("/* never closed");
        roundtrip("let c = '");
    }

    #[test]
    fn raw_identifiers_stay_idents() {
        let ts = texts("let r#type = 1; let r = 2;");
        assert!(ts.contains(&(Kind::Ident, "r#type")));
        assert!(ts.contains(&(Kind::Ident, "r")));
    }
}

//! Repo-specific static analysis for the Baldur reproduction.
//!
//! The paper's headline claims (bit-reproducible latency/power numbers from
//! a clock-less, bufferless network) only hold if the simulator is provably
//! deterministic and panic-free on hot paths. `baldur-lint` machine-checks
//! three families of source-level rules over `crates/*/src`:
//!
//! * **Determinism wall** — in the result-producing crates (`sim`, `net`,
//!   `tl`, `phy`) no ambient randomness (`thread_rng`, `rand::random`), no
//!   wall-clock reads (`SystemTime::now`, `Instant::now`), and no unordered
//!   `HashMap`/`HashSet` (whose iteration order leaks into reports; use
//!   `BTreeMap`/`BTreeSet` or an index-keyed `Vec`).
//! * **Panic budget** — no `.unwrap()` / `.expect(...)` in non-test library
//!   code, except sites recorded in `crates/lint/allowlist.txt`. The
//!   allowlist is a per-(rule, file) count budget that may shrink but never
//!   grow: exceeding it fails the lint, and a stale (over-provisioned)
//!   entry also fails so the budget ratchets down.
//! * **Float hazards** — `partial_cmp(..).unwrap()/expect(...)` (panics on
//!   NaN; use `f64::total_cmp`) and `==`/`!=` against float literals.
//!
//! Comments, string literals, and `#[cfg(test)]`/`#[test]` regions are
//! excluded from matching, so documentation and test assertions never trip
//! the wall. Diagnostics carry `file:line`, and [`lint_repo`] produces a
//! JSON-serializable [`Report`] that the `baldur-lint` binary writes under
//! `results/`.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use serde::Serialize;

/// Crates whose sources fall under the determinism wall.
pub const WALL_CRATES: &[&str] = &["sim", "net", "tl", "phy"];

/// Files on the supervised job path: the code that runs *around* user
/// jobs (scheduling, isolation, journaling, result plumbing). A panic
/// here defeats panic isolation — the harness would die with the job it
/// was supposed to contain — so these files get a zero-budget panic rule
/// of their own, with no allowlist escape hatch in practice.
pub const JOB_PATH_FILES: &[&str] = &[
    "crates/sim/src/par.rs",
    "crates/core/src/sweep.rs",
    "crates/core/src/supervise.rs",
    "crates/core/src/error.rs",
    "crates/net/src/runner.rs",
];

/// Relative path (from the repo root) of the panic-budget allowlist.
pub const ALLOWLIST_PATH: &str = "crates/lint/allowlist.txt";

/// Relative path (from the repo root) the binary writes its report to.
pub const REPORT_PATH: &str = "results/lint_report.json";

/// The rule families `baldur-lint` checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock reads in a determinism-wall crate.
    WallClock,
    /// Ambient (OS-seeded) randomness in a determinism-wall crate.
    AmbientRandom,
    /// `HashMap`/`HashSet` in a determinism-wall crate.
    UnorderedCollection,
    /// `.unwrap()` / `.expect(...)` in non-test library code.
    PanicSite,
    /// `.unwrap()` / `.expect(...)` in `crates/net` fault-handling code
    /// (a `fault`-named file, or any line touching fault state). Fault
    /// paths run exactly when the simulated network is already degraded —
    /// a panic there turns an injected fault into a crashed experiment,
    /// so these sites get their own (empty) budget instead of sharing the
    /// general panic budget.
    FaultPathPanic,
    /// `.unwrap()` / `.expect(...)` in a [`JOB_PATH_FILES`] source: the
    /// supervised job path must stay panic-free, or the harness dies
    /// with the very job whose panic it exists to contain.
    JobPathPanic,
    /// `std::process::exit` in library code. Exiting from a library
    /// skips destructors, swallows the sweep summary, and robs callers
    /// of the chance to report; only binaries (and the documented bench
    /// helpers on the allowlist) get to choose the process exit code.
    ProcessExit,
    /// Ad-hoc harness code in a bench binary: `env::args`, `Args::parse`,
    /// or direct `Sweep` construction in `crates/bench/src/bin/*`. Every
    /// binary must stay a thin wrapper over the experiment registry
    /// (`registry_main` / `all_figures_main`) so flags, caching, and
    /// supervision behave identically everywhere; a bin that parses its
    /// own arguments or builds its own sweep forks that contract. No
    /// allowlist escape: move the logic into a spec or the shared runner.
    AdHocBin,
    /// `partial_cmp(..)` chained into `.unwrap()` / `.expect(...)`.
    FloatCmpPanic,
    /// `==` / `!=` against a float literal.
    FloatLiteralEq,
    /// A committed `*.proptest-regressions` file anywhere in the tree.
    /// The repo's property tests are deterministic seed-loop tests (no
    /// `proptest` dependency), so these shrinker artifacts are always
    /// stale imports; a failure case worth keeping belongs in test code.
    StaleArtifact,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: &'static [Rule] = &[
        Rule::WallClock,
        Rule::AmbientRandom,
        Rule::UnorderedCollection,
        Rule::PanicSite,
        Rule::FaultPathPanic,
        Rule::JobPathPanic,
        Rule::ProcessExit,
        Rule::AdHocBin,
        Rule::FloatCmpPanic,
        Rule::FloatLiteralEq,
        Rule::StaleArtifact,
    ];

    /// Stable identifier used in the allowlist and the JSON report.
    pub fn id(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::AmbientRandom => "ambient-random",
            Rule::UnorderedCollection => "unordered-collection",
            Rule::PanicSite => "panic-site",
            Rule::FaultPathPanic => "fault-path-panic",
            Rule::JobPathPanic => "job-path-panic",
            Rule::ProcessExit => "process-exit",
            Rule::AdHocBin => "ad-hoc-bin",
            Rule::FloatCmpPanic => "float-cmp-panic",
            Rule::FloatLiteralEq => "float-literal-eq",
            Rule::StaleArtifact => "stale-artifact",
        }
    }

    /// Parses an allowlist rule identifier.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == id)
    }

    /// One-line description for the report.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "no SystemTime::now/Instant::now in result-producing crates (sim/net/tl/phy)"
            }
            Rule::AmbientRandom => {
                "no thread_rng/rand::random in result-producing crates; use StreamRng"
            }
            Rule::UnorderedCollection => {
                "no HashMap/HashSet in result-producing crates; iteration order leaks into output"
            }
            Rule::PanicSite => {
                "no .unwrap()/.expect() in non-test library code outside the shrinking allowlist"
            }
            Rule::FaultPathPanic => {
                "no .unwrap()/.expect() in crates/net fault-handling code; \
                 a panic there crashes the experiment mid-fault"
            }
            Rule::JobPathPanic => {
                "no .unwrap()/.expect() on the supervised job path (par/sweep/supervise/\
                 error/runner); a panic there defeats panic isolation"
            }
            Rule::ProcessExit => {
                "no std::process::exit in library code; return an error and let the \
                 binary choose the exit code"
            }
            Rule::AdHocBin => {
                "no env::args/Args::parse/Sweep construction in bench binaries; \
                 route through registry_main so every bin shares one CLI contract"
            }
            Rule::FloatCmpPanic => {
                "no partial_cmp().unwrap()/expect(); NaN panics — use f64::total_cmp"
            }
            Rule::FloatLiteralEq => "no ==/!= against float literals in library code",
            Rule::StaleArtifact => {
                "no committed *.proptest-regressions files; the seed-loop property \
                 tests are deterministic, so shrinker artifacts are always stale"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule match at a source location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Finding {
    /// Rule identifier (see [`Rule::id`]).
    pub rule: String,
    /// Path relative to the repo root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One consumed allowlist budget, echoed into the report.
#[derive(Debug, Clone, Serialize)]
pub struct AllowlistUse {
    /// Rule identifier.
    pub rule: String,
    /// File the budget applies to.
    pub file: String,
    /// Budgeted number of sites.
    pub allowed: usize,
    /// Sites actually found.
    pub found: usize,
}

/// The JSON report `baldur-lint` writes under `results/`.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Name and version of the analyzer.
    pub tool: String,
    /// Every rule checked, with its description.
    pub rules: Vec<RuleInfo>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Violations (after allowlist application); empty on a clean tree.
    pub violations: Vec<Finding>,
    /// Allowlist budgets and how much of each was used.
    pub allowlisted: Vec<AllowlistUse>,
}

/// A rule's identifier and description, for the report.
#[derive(Debug, Clone, Serialize)]
pub struct RuleInfo {
    /// Stable identifier.
    pub id: String,
    /// One-line description.
    pub description: String,
}

/// The outcome of linting a tree.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The full report (rules, counts, violations, allowlist usage).
    pub report: Report,
}

impl Outcome {
    /// True when no violations remain after allowlist application.
    pub fn is_clean(&self) -> bool {
        self.report.violations.is_empty()
    }
}

/// Lints the repository rooted at `root` (the directory containing
/// `crates/`).
///
/// # Errors
///
/// Returns a message when the tree cannot be walked, a source file cannot
/// be read, or the allowlist is malformed.
pub fn lint_repo(root: &Path) -> Result<Outcome, String> {
    let allowlist = load_allowlist(&root.join(ALLOWLIST_PATH))?;
    let files = collect_sources(root)?;
    let mut findings: Vec<Finding> = Vec::new();
    for (abs, rel) in &files {
        let source =
            std::fs::read_to_string(abs).map_err(|e| format!("read {}: {e}", abs.display()))?;
        findings.extend(lint_source(rel, &source));
    }
    findings.extend(find_stale_artifacts(root)?);

    // Apply allowlist budgets per (rule, file).
    let mut by_key: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    for f in findings {
        by_key
            .entry((f.rule.clone(), f.file.clone()))
            .or_default()
            .push(f);
    }
    let mut violations = Vec::new();
    let mut allowlisted = Vec::new();
    let mut consumed: BTreeMap<(String, String), usize> = BTreeMap::new();
    for ((rule, file), group) in &by_key {
        let key = (rule.clone(), file.clone());
        let allowed = allowlist.get(&key).copied().unwrap_or(0);
        consumed.insert(key, group.len());
        if group.len() > allowed {
            if allowed > 0 {
                violations.push(Finding {
                    rule: rule.clone(),
                    file: file.clone(),
                    line: 0,
                    message: format!(
                        "allowlist budget exceeded: {} sites found, {} allowed — \
                         fix the new sites; the budget never grows",
                        group.len(),
                        allowed
                    ),
                });
            }
            for f in group {
                if allowed == 0 {
                    violations.push(f.clone());
                }
            }
            if allowed > 0 {
                violations.extend(group.iter().cloned());
            }
        } else {
            allowlisted.push(AllowlistUse {
                rule: rule.clone(),
                file: file.clone(),
                allowed,
                found: group.len(),
            });
            if group.len() < allowed {
                violations.push(Finding {
                    rule: rule.clone(),
                    file: file.clone(),
                    line: 0,
                    message: format!(
                        "stale allowlist entry: {} sites found but {} budgeted — \
                         shrink {ALLOWLIST_PATH}",
                        group.len(),
                        allowed
                    ),
                });
            }
        }
    }
    // Allowlist entries for files with no findings at all are also stale.
    for ((rule, file), allowed) in &allowlist {
        if *allowed > 0 && !consumed.contains_key(&(rule.clone(), file.clone())) {
            violations.push(Finding {
                rule: rule.clone(),
                file: file.clone(),
                line: 0,
                message: format!(
                    "stale allowlist entry: no sites found but {allowed} budgeted — \
                     remove it from {ALLOWLIST_PATH}"
                ),
            });
        }
    }
    violations.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));

    Ok(Outcome {
        report: Report {
            tool: format!("baldur-lint {}", env!("CARGO_PKG_VERSION")),
            rules: Rule::ALL
                .iter()
                .map(|r| RuleInfo {
                    id: r.id().to_string(),
                    description: r.describe().to_string(),
                })
                .collect(),
            files_scanned: files.len(),
            violations,
            allowlisted,
        },
    })
}

/// Lints a single source file (relative path decides rule applicability).
/// Exposed for tests and for editor integration.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let scrubbed = scrub(source);
    let test_lines = test_mask(&scrubbed);
    let crate_name = crate_of(rel_path);
    let in_wall = crate_name.is_some_and(|c| WALL_CRATES.contains(&c));
    // Binaries and benches may panic on bad CLI input; the panic budget
    // covers library code.
    let panic_scope = !rel_path.contains("/src/bin/") && !rel_path.contains("/benches/");
    // Fault-injection code in the network crate gets the stricter
    // fault-path rule: every site in a `fault`-named file, plus any
    // fault-state-touching line elsewhere in the crate.
    let net_crate = crate_name == Some("net");
    let fault_file = net_crate && rel_path.to_ascii_lowercase().contains("fault");
    // The supervised job path gets its own zero-budget panic rule.
    let job_path = JOB_PATH_FILES.contains(&rel_path);
    // Library code must not choose the process exit code; binaries (and
    // the bench CLI helpers on the allowlist) may.
    let exit_scope = panic_scope && !rel_path.ends_with("/main.rs");
    // Bench binaries must stay thin registry wrappers.
    let bin_harness = rel_path.contains("crates/bench/src/bin/");

    let mut findings = Vec::new();
    for (idx, line) in scrubbed.lines().enumerate() {
        if test_lines.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let lineno = idx + 1;
        let mut push = |rule: Rule, message: String| {
            findings.push(Finding {
                rule: rule.id().to_string(),
                file: rel_path.to_string(),
                line: lineno,
                message,
            });
        };
        if in_wall {
            // One finding per occurrence, so the panic-budget counts stay
            // meaningful on lines with several sites.
            for pat in ["SystemTime::now", "Instant::now"] {
                for _ in line.matches(pat) {
                    push(
                        Rule::WallClock,
                        format!("wall-clock read `{pat}` breaks reproducibility"),
                    );
                }
            }
            for pat in ["thread_rng", "rand::random"] {
                for _ in line.matches(pat) {
                    push(
                        Rule::AmbientRandom,
                        format!("ambient randomness `{pat}`; derive a StreamRng instead"),
                    );
                }
            }
            for pat in ["HashMap", "HashSet"] {
                for _ in line.matches(pat) {
                    push(
                        Rule::UnorderedCollection,
                        format!(
                            "unordered `{pat}` in a result-producing crate; \
                             use BTreeMap/BTreeSet or an index-keyed Vec"
                        ),
                    );
                }
            }
        }
        let unwraps = line.matches(".unwrap()").count();
        let expects = line.matches(".expect(").count() - line.matches(".expect_err(").count();
        let cmp_panic = line.contains("partial_cmp") && unwraps + expects > 0;
        if cmp_panic {
            push(
                Rule::FloatCmpPanic,
                "partial_cmp().unwrap()/expect() panics on NaN; use f64::total_cmp".to_string(),
            );
        }
        if panic_scope && !cmp_panic {
            let fault_path =
                fault_file || (net_crate && line.to_ascii_lowercase().contains("fault"));
            let (rule, what) = if job_path {
                (Rule::JobPathPanic, "supervised job-path")
            } else if fault_path {
                (Rule::FaultPathPanic, "fault-handling")
            } else {
                (Rule::PanicSite, "library")
            };
            for _ in 0..unwraps {
                push(
                    rule,
                    format!("`.unwrap()` in {what} code; handle the None/Err or allowlist it"),
                );
            }
            for _ in 0..expects {
                push(
                    rule,
                    format!("`.expect(..)` in {what} code; handle the None/Err or allowlist it"),
                );
            }
        }
        if exit_scope {
            for _ in 0..line.matches("process::exit").count() {
                push(
                    Rule::ProcessExit,
                    "`process::exit` in library code; return an error and let the binary exit"
                        .to_string(),
                );
            }
        }
        if bin_harness {
            for pat in ["env::args", "Args::parse", "Sweep::"] {
                for _ in line.matches(pat) {
                    push(
                        Rule::AdHocBin,
                        format!(
                            "`{pat}` in a bench binary; bins are thin wrappers — declare \
                             the knob on the experiment spec and call registry_main"
                        ),
                    );
                }
            }
        }
        if let Some(op) = float_literal_cmp(line) {
            push(
                Rule::FloatLiteralEq,
                format!("`{op}` against a float literal; compare with a tolerance"),
            );
        }
    }
    findings
}

/// The crate directory name (`sim`, `net`, ...) of a `crates/<name>/...`
/// relative path.
fn crate_of(rel_path: &str) -> Option<&str> {
    let mut parts = rel_path.split('/');
    if parts.next() != Some("crates") {
        return None;
    }
    parts.next()
}

/// Detects `== 1.0`-style comparisons (either operand a float literal).
fn float_literal_cmp(line: &str) -> Option<&'static str> {
    let bytes = line.as_bytes();
    for i in 0..bytes.len().saturating_sub(1) {
        if bytes[i + 1] != b'=' || (bytes[i] != b'=' && bytes[i] != b'!') {
            continue;
        }
        // Exclude `<=`, `>=`, `==` chains and pattern arms `=>`.
        if i > 0 && matches!(bytes[i - 1], b'<' | b'>' | b'=' | b'!') {
            continue;
        }
        if bytes.get(i + 2) == Some(&b'=') {
            continue;
        }
        let op = if bytes[i] == b'=' { "==" } else { "!=" };
        if operand_is_float_literal(&line[i + 2..], Direction::Forward)
            || operand_is_float_literal(&line[..i], Direction::Backward)
        {
            return Some(op);
        }
    }
    None
}

enum Direction {
    Forward,
    Backward,
}

/// True when the nearest operand in the given direction is a float literal
/// like `1.0` or `0.25` (but not a range like `0.0..=1.0` or a method call
/// like `1.0_f64.sqrt()`).
fn operand_is_float_literal(s: &str, dir: Direction) -> bool {
    match dir {
        Direction::Forward => {
            let t = s.trim_start();
            let t = t.strip_prefix('-').unwrap_or(t).trim_start();
            let digits = t.chars().take_while(|c| c.is_ascii_digit()).count();
            if digits == 0 {
                return false;
            }
            let rest = &t[digits..];
            let Some(frac) = rest.strip_prefix('.') else {
                return false;
            };
            let frac_digits = frac.chars().take_while(|c| c.is_ascii_digit()).count();
            frac_digits > 0
                && !matches!(
                    frac[frac_digits..].chars().next(),
                    Some('.') | Some('_') | Some('e') | Some('E')
                )
        }
        Direction::Backward => {
            let t = s.trim_end();
            let frac_digits = t.chars().rev().take_while(|c| c.is_ascii_digit()).count();
            if frac_digits == 0 || !t[..t.len() - frac_digits].ends_with('.') {
                return false;
            }
            let before_dot = &t[..t.len() - frac_digits - 1];
            let int_digits = before_dot
                .chars()
                .rev()
                .take_while(|c| c.is_ascii_digit())
                .count();
            int_digits > 0 && !before_dot[..before_dot.len() - int_digits].ends_with('.')
        }
    }
}

/// Replaces comments and string/char literal contents with spaces,
/// preserving line structure, so pattern matching never fires inside
/// documentation or message text.
pub fn scrub(source: &str) -> String {
    let b: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        // Line comment (and doc comment).
        if c == '/' && b.get(i + 1) == Some(&'/') {
            while i < b.len() && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 1;
            out.push(' ');
            out.push(' ');
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(if b[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            continue;
        }
        // Raw string literal r"..." / r#"..."# (with optional b prefix).
        if (c == 'r' || c == 'b') && !prev_is_ident(&b, i) {
            let mut j = i;
            if b[j] == 'b' && b.get(j + 1) == Some(&'r') {
                j += 1;
            }
            if b[j] == 'r' {
                let mut hashes = 0;
                let mut k = j + 1;
                while b.get(k) == Some(&'#') {
                    hashes += 1;
                    k += 1;
                }
                if b.get(k) == Some(&'"') {
                    for _ in i..=k {
                        out.push(' ');
                    }
                    i = k + 1;
                    // Scan to closing quote followed by `hashes` hashes.
                    while i < b.len() {
                        if b[i] == '"'
                            && b[i + 1..]
                                .iter()
                                .take(hashes)
                                .filter(|&&h| h == '#')
                                .count()
                                == hashes
                        {
                            for _ in 0..=hashes {
                                out.push(' ');
                            }
                            i += 1 + hashes;
                            break;
                        }
                        out.push(if b[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                    continue;
                }
            }
        }
        // Ordinary string literal.
        if c == '"' {
            out.push(' ');
            i += 1;
            while i < b.len() {
                if b[i] == '\\' {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                }
                out.push(if b[i] == '\n' { '\n' } else { ' ' });
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime: a quote directly after an identifier
        // character is never a char literal start (e.g. `Scheduler<'a>`
        // can't occur, but `x'` could in macros); otherwise look for a
        // closing quote within a short window.
        if c == '\'' {
            let is_char = match b.get(i + 1) {
                Some('\\') => true,
                Some(_) => b.get(i + 2) == Some(&'\''),
                None => false,
            };
            if is_char {
                let close = if b.get(i + 1) == Some(&'\\') {
                    // `'\n'`, `'\\'`, `'\x41'`, `'\u{1F600}'`
                    (i + 2..b.len().min(i + 12)).find(|&k| b[k] == '\'')
                } else {
                    Some(i + 2)
                };
                if let Some(close) = close {
                    for &ch in &b[i..=close] {
                        out.push(if ch == '\n' { '\n' } else { ' ' });
                    }
                    i = close + 1;
                    continue;
                }
            }
            out.push('\'');
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

/// Per-line mask: `true` for lines inside `#[cfg(test)]` or `#[test]`
/// items (computed on scrubbed source).
pub fn test_mask(scrubbed: &str) -> Vec<bool> {
    let lines: Vec<&str> = scrubbed.lines().collect();
    let mut mask = vec![false; lines.len()];
    let chars: Vec<char> = scrubbed.chars().collect();
    // Byte offsets won't do: we walk chars, so build a char-index → line map.
    let mut line_of = Vec::with_capacity(chars.len() + 1);
    let mut ln = 0;
    for &c in &chars {
        line_of.push(ln);
        if c == '\n' {
            ln += 1;
        }
    }
    line_of.push(ln);

    let text: String = chars.iter().collect();
    for pat in ["#[cfg(test)]", "#[test]"] {
        let mut start = 0;
        while let Some(pos) = text[start..].find(pat) {
            let attr_at = start + pos;
            let mut i = attr_at + pat.len();
            // Skip whitespace and further attributes to the item start.
            let cs: Vec<char> = text.chars().collect();
            loop {
                while i < cs.len() && cs[i].is_whitespace() {
                    i += 1;
                }
                if i < cs.len() && cs[i] == '#' {
                    // Skip a whole `#[...]` attribute.
                    while i < cs.len() && cs[i] != ']' {
                        i += 1;
                    }
                    i += 1;
                } else {
                    break;
                }
            }
            // Walk to the item's opening brace (or terminating semicolon).
            let mut open = None;
            while i < cs.len() {
                match cs[i] {
                    '{' => {
                        open = Some(i);
                        break;
                    }
                    ';' => break,
                    _ => i += 1,
                }
            }
            let end = match open {
                Some(open_idx) => {
                    let mut depth = 0usize;
                    let mut k = open_idx;
                    loop {
                        if k >= cs.len() {
                            break k;
                        }
                        match cs[k] {
                            '{' => depth += 1,
                            '}' => {
                                depth -= 1;
                                if depth == 0 {
                                    break k;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                None => i,
            };
            let first = line_of[attr_at.min(line_of.len() - 1)];
            let last = line_of[end.min(line_of.len() - 1)];
            for m in mask.iter_mut().take(last + 1).skip(first) {
                *m = true;
            }
            start = attr_at + pat.len();
        }
    }
    mask
}

/// Scans the *whole* repository tree (not just `crates/*/src`) for banned
/// artifact files — currently `*.proptest-regressions`. Generated and
/// external directories (`.git`, `target`, `results`, `vendor`) are
/// skipped; everything else, including `tests/` at the repo root, is fair
/// game since that is exactly where such files get committed by accident.
///
/// # Errors
///
/// Returns a message when a directory cannot be walked.
pub fn find_stale_artifacts(root: &Path) -> Result<Vec<Finding>, String> {
    const SKIP_DIRS: &[&str] = &[".git", "target", "results", "vendor"];
    let mut findings = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in entries {
            paths.push(
                entry
                    .map_err(|e| format!("walk {}: {e}", dir.display()))?
                    .path(),
            );
        }
        paths.sort();
        for path in paths {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) {
                    stack.push(path);
                }
            } else if name.ends_with(".proptest-regressions") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| format!("relativize {}: {e}", path.display()))?
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                findings.push(Finding {
                    rule: Rule::StaleArtifact.id().to_string(),
                    file: rel,
                    line: 0,
                    message: "committed proptest shrinker artifact; the seed-loop property \
                              tests are deterministic — delete it (keep a worthwhile failure \
                              case as a regular test instead)"
                        .to_string(),
                });
            }
        }
    }
    findings.sort_by(|a, b| a.file.cmp(&b.file));
    Ok(findings)
}

/// All `.rs` files under `crates/*/src`, as `(absolute, repo-relative)`
/// pairs sorted by relative path.
fn collect_sources(root: &Path) -> Result<Vec<(PathBuf, String)>, String> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("read {}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk crates/: {e}"))?;
        if entry.path().is_dir() {
            crate_dirs.push(entry.path());
        }
    }
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk_rs(&src, root, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(out)
}

fn walk_rs(dir: &Path, root: &Path, out: &mut Vec<(PathBuf, String)>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        paths.push(
            entry
                .map_err(|e| format!("walk {}: {e}", dir.display()))?
                .path(),
        );
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            walk_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("relativize {}: {e}", path.display()))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((path, rel));
        }
    }
    Ok(())
}

/// Parses the allowlist: `<rule-id> <repo-relative-path> <max-count>` per
/// line, `#` comments and blank lines ignored. A missing file is an empty
/// allowlist.
fn load_allowlist(path: &Path) -> Result<BTreeMap<(String, String), usize>, String> {
    let mut map = BTreeMap::new();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(map),
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(format!(
                "{}:{}: expected `<rule> <path> <count>`, got `{line}`",
                path.display(),
                idx + 1
            ));
        }
        let rule = Rule::from_id(parts[0]).ok_or_else(|| {
            format!(
                "{}:{}: unknown rule `{}`",
                path.display(),
                idx + 1,
                parts[0]
            )
        })?;
        let count: usize = parts[2].parse().map_err(|e| {
            format!(
                "{}:{}: bad count `{}`: {e}",
                path.display(),
                idx + 1,
                parts[2]
            )
        })?;
        map.insert((rule.id().to_string(), parts[1].to_string()), count);
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_comments_and_strings() {
        let src = "let a = \"Instant::now\"; // Instant::now\nlet b = 1;\n";
        let s = scrub(src);
        assert!(!s.contains("Instant::now"));
        assert!(s.contains("let b = 1;"));
        assert_eq!(s.lines().count(), src.lines().count());
    }

    #[test]
    fn scrub_keeps_lifetimes_and_char_literals_apart() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }\n";
        let s = scrub(src);
        assert!(s.contains("fn f<'a>(x: &'a str) -> char"));
        assert!(!s.contains("'x'"));
    }

    #[test]
    fn test_regions_are_masked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let findings = lint_source("crates/sim/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn wall_rules_fire_only_in_wall_crates() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(lint_source("crates/sim/src/x.rs", src).len(), 1);
        assert!(lint_source("crates/power/src/x.rs", src).is_empty());
    }

    #[test]
    fn float_literal_eq_detected_both_sides() {
        assert!(float_literal_cmp("if x == 1.0 {").is_some());
        assert!(float_literal_cmp("if 0.25 != y {").is_some());
        assert!(float_literal_cmp("if x <= 1.0 {").is_none());
        assert!(float_literal_cmp("for i in 0.0..=1.0 {").is_none());
        assert!(float_literal_cmp("if x == 10 {").is_none());
        assert!(float_literal_cmp("match x { _ => 1.0 }").is_none());
    }

    #[test]
    fn fault_path_panic_fires_in_net_fault_code() {
        // A `fault`-named file in crates/net: every site is fault-path.
        let src = "fn f(p: &Plan) { p.events.first().unwrap(); }\n";
        let fs = lint_source("crates/net/src/faults.rs", src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "fault-path-panic");
        // Elsewhere in the crate only fault-state-touching lines are.
        let src2 = "fn g() { self.fstate.apply_fault(now).expect(\"ok\"); }\n";
        let fs2 = lint_source("crates/net/src/baldur_net.rs", src2);
        assert_eq!(fs2[0].rule, "fault-path-panic");
        let src3 = "fn h() { self.queue.pop().unwrap(); }\n";
        let fs3 = lint_source("crates/net/src/baldur_net.rs", src3);
        assert_eq!(fs3[0].rule, "panic-site");
        // Outside crates/net the ordinary panic budget applies.
        let fs4 = lint_source("crates/core/src/faults.rs", src);
        assert_eq!(fs4[0].rule, "panic-site");
    }

    #[test]
    fn stale_artifact_scan_finds_proptest_regressions() {
        let root =
            std::env::temp_dir().join(format!("baldur-lint-artifact-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("tests")).expect("mkdir tests/");
        std::fs::create_dir_all(root.join("target/debug")).expect("mkdir target/");
        std::fs::write(
            root.join("tests/properties.proptest-regressions"),
            "cc deadbeef\n",
        )
        .expect("write artifact");
        // The same file under target/ is generated output and ignored.
        std::fs::write(
            root.join("target/debug/x.proptest-regressions"),
            "cc deadbeef\n",
        )
        .expect("write ignored artifact");
        let findings = find_stale_artifacts(&root).expect("scan");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "stale-artifact");
        assert_eq!(findings[0].file, "tests/properties.proptest-regressions");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn stale_artifact_scan_clean_tree_is_empty() {
        let root =
            std::env::temp_dir().join(format!("baldur-lint-artifact-clean-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("tests")).expect("mkdir tests/");
        std::fs::write(root.join("tests/properties.rs"), "// fine\n").expect("write source");
        assert!(find_stale_artifacts(&root).expect("scan").is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn panic_budget_skips_bins() {
        let src = "fn main() { run().unwrap(); }\n";
        assert!(lint_source("crates/bench/src/bin/fig6.rs", src).is_empty());
        assert_eq!(lint_source("crates/bench/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn ad_hoc_bin_rule_bans_harness_code_in_bins() {
        let src = "fn main() {\n    let a: Vec<String> = std::env::args().collect();\n    \
                   let args = Args::parse();\n    let sw = Sweep::new(0);\n}\n";
        let fs = lint_source("crates/bench/src/bin/fig6.rs", src);
        assert_eq!(fs.len(), 3, "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == "ad-hoc-bin"), "{fs:?}");
        // The shared cli/runner modules are the sanctioned home.
        assert!(lint_source("crates/bench/src/cli.rs", src)
            .iter()
            .all(|f| f.rule != "ad-hoc-bin"));
        // A conforming wrapper is clean.
        let ok = "fn main() {\n    baldur_bench::registry_main(\"fig6\")\n}\n";
        assert!(lint_source("crates/bench/src/bin/fig6.rs", ok).is_empty());
    }

    #[test]
    fn job_path_files_get_the_stricter_panic_rule() {
        let src = "fn f() { slot.take().unwrap(); cell.get().expect(\"set\"); }\n";
        for file in JOB_PATH_FILES {
            let fs = lint_source(file, src);
            assert_eq!(fs.len(), 2, "{file}: {fs:?}");
            assert!(fs.iter().all(|f| f.rule == "job-path-panic"), "{fs:?}");
        }
        // The same code elsewhere stays under the general budget.
        let fs = lint_source("crates/core/src/experiments.rs", src);
        assert!(fs.iter().all(|f| f.rule == "panic-site"), "{fs:?}");
    }

    #[test]
    fn process_exit_banned_in_library_code_only() {
        let src = "fn f() { std::process::exit(1); }\n";
        let fs = lint_source("crates/bench/src/lib.rs", src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "process-exit");
        // Binaries, benches, and main.rs choose their own exit codes.
        assert!(lint_source("crates/bench/src/bin/faults.rs", src).is_empty());
        assert!(lint_source("crates/bench/benches/figures.rs", src).is_empty());
        assert!(lint_source("crates/lint/src/main.rs", src).is_empty());
    }
}

//! Repo-specific static analysis for the Baldur reproduction.
//!
//! The paper's headline claims (bit-reproducible latency/power numbers from
//! a clock-less, bufferless network) only hold if the simulator is provably
//! deterministic and its arithmetic exact. `baldur-lint` machine-checks
//! source-level rules over `crates/*/src` with a real token-level engine —
//! a lossless Rust lexer ([`lexer`]), an item/scope tracker ([`scope`]),
//! and one visitor pass per rule family ([`rules`]) — instead of per-line
//! regexes over scrubbed text. The rule families:
//!
//! * **Determinism wall** — in the result-producing crates (`sim`, `net`,
//!   `tl`, `phy`, `topo`, plus `core::sweep`): no ambient randomness
//!   (`thread_rng`, `rand::random`), no wall-clock reads (`SystemTime`,
//!   `Instant::now`), no environment reads (`env::var`) outside the
//!   allowlisted harness modules, and no unordered `HashMap`/`HashSet`
//!   (iteration order leaks into reports; use `BTreeMap`/`BTreeSet` or an
//!   index-keyed `Vec`).
//! * **Panic budget** — no `.unwrap()` / `.expect(...)` in non-test
//!   library code, except sites recorded in `crates/lint/allowlist.txt`;
//!   plus the v2 surface: panicking closures behind `unwrap_or_else`-style
//!   adaptors, and slice indexing on the supervised job path.
//! * **Unit safety** — bare `f64` parameters named like physical
//!   quantities with no unit suffix, and identifiers implying different
//!   units combined in one additive expression.
//! * **Narrowing casts** — `as u32`-style truncations of time-, count-,
//!   or index-flavoured expressions in the event kernel.
//! * **Float hazards** — `partial_cmp(..).unwrap()` (panics on NaN) and
//!   `==`/`!=` against float literals.
//!
//! Comments, string literals, and `#[cfg(test)]`/`#[test]` regions are
//! excluded by construction (they are distinct tokens or masked scopes,
//! not scrubbed text). The allowlist is a per-(rule, file) count budget
//! that may shrink but never grow: exceeding it fails the lint, and a
//! stale (over-provisioned) entry also fails so the budget ratchets down.
//! Diagnostics carry `file:line`, and [`lint_repo`] produces a
//! JSON-serializable [`Report`] that the `baldur-lint` binary writes to
//! `results/lint.json`. File scanning fans out over the deterministic
//! `sim::par` pool; findings are submission-ordered, so output is
//! byte-identical at any `BALDUR_THREADS`.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use serde::Serialize;

pub mod lexer;
pub mod rules;
pub mod scope;

/// Crates whose sources fall under the determinism wall.
pub const WALL_CRATES: &[&str] = &["sim", "net", "tl", "phy", "topo"];

/// Individual files outside [`WALL_CRATES`] that also sit behind the
/// determinism wall: the sweep engine produces the cached, journaled
/// results, so nondeterminism there corrupts the content-addressed cache.
pub const WALL_FILES: &[&str] = &["crates/core/src/sweep.rs"];

/// The only scanned files allowed to read the wall clock. The
/// wall-clock rule is *repo-wide* (unlike the rest of the determinism
/// family, which walls off the result-producing crates): every
/// measurement must flow through the injected-clock perf harness, so
/// exact work counters and wall times never mix. `bench::perf` hosts
/// the single `Instant` read and installs it into the clock-free
/// measurement engine; everything else goes through an allowlist
/// budget (the sweep/supervisor job timing) or not at all.
pub const WALL_CLOCK_EXEMPT_FILES: &[&str] = &["crates/bench/src/perf.rs"];

/// Files on the supervised job path: the code that runs *around* user
/// jobs (scheduling, isolation, journaling, result plumbing). A panic
/// here defeats panic isolation — the harness would die with the job it
/// was supposed to contain — so these files get a zero-budget panic rule
/// of their own, with no allowlist escape hatch. The overload experiment
/// rides along: its storm grid is built and gated around supervised
/// sweep jobs, and a panic while shedding load is exactly the failure
/// mode the overload controls exist to avoid.
pub const JOB_PATH_FILES: &[&str] = &[
    "crates/sim/src/par.rs",
    "crates/core/src/sweep.rs",
    "crates/core/src/supervise.rs",
    "crates/core/src/error.rs",
    "crates/net/src/runner.rs",
    "crates/core/src/experiments/overload.rs",
];

/// Hot-path sources of the million-endpoint kernel: the event engine
/// and the two packet models' struct-of-arrays state. Per-event heap
/// allocation (`Box::new`) and node-per-entry collections (`BTreeMap`,
/// `HashMap`) are banned here outright — state lives in flat arrays and
/// generational arenas, sized once and reused. The retired `_baseline`
/// models are deliberately absent: they keep the old map-based layout
/// for differential testing.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/sim/src/engine.rs",
    "crates/sim/src/calendar.rs",
    "crates/sim/src/arena.rs",
    "crates/net/src/baldur_net.rs",
    "crates/net/src/router_net.rs",
];

/// Relative path (from the repo root) of the panic-budget allowlist.
pub const ALLOWLIST_PATH: &str = "crates/lint/allowlist.txt";

/// Relative path (from the repo root) the binary writes its report to.
pub const REPORT_PATH: &str = "results/lint.json";

/// The rule families `baldur-lint` checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock reads in a determinism-wall crate.
    WallClock,
    /// Ambient (OS-seeded) randomness in a determinism-wall crate.
    AmbientRandom,
    /// `env::var`/`env::var_os` in a determinism-wall crate outside the
    /// allowlisted harness modules. A walled crate's output must be a
    /// function of its config, never of the invoking shell.
    EnvRead,
    /// `HashMap`/`HashSet` in a determinism-wall crate.
    UnorderedCollection,
    /// `.unwrap()` / `.expect(...)` in non-test library code.
    PanicSite,
    /// A panicking closure reached through `unwrap_or_else` /
    /// `ok_or_else` / `map_or_else` — an indirect panic site the old
    /// line regex (which looked for `.unwrap()`/`.expect(` substrings)
    /// provably missed.
    PanicIndirect,
    /// Slice/array indexing (`xs[i]`) on the supervised job path or in
    /// fault-handling code: it panics on out-of-range exactly like
    /// `.unwrap()`, and the regex engine had no rule for it at all.
    SliceIndex,
    /// `.unwrap()` / `.expect(...)` in `crates/net` fault-handling code
    /// (a `fault`-named file, or any line touching fault state). Fault
    /// paths run exactly when the simulated network is already degraded —
    /// a panic there turns an injected fault into a crashed experiment,
    /// so these sites get their own (empty) budget instead of sharing the
    /// general panic budget.
    FaultPathPanic,
    /// `.unwrap()` / `.expect(...)` in a [`JOB_PATH_FILES`] source: the
    /// supervised job path must stay panic-free, or the harness dies
    /// with the very job whose panic it exists to contain.
    JobPathPanic,
    /// `std::process::exit` in library code. Exiting from a library
    /// skips destructors, swallows the sweep summary, and robs callers
    /// of the chance to report; only binaries (and the documented bench
    /// helpers on the allowlist) get to choose the process exit code.
    ProcessExit,
    /// Ad-hoc harness code in a bench binary: `env::args`, `Args::parse`,
    /// or direct `Sweep` construction in `crates/bench/src/bin/*`. Every
    /// binary must stay a thin wrapper over the experiment registry
    /// (`registry_main` / `all_figures_main`) so flags, caching, and
    /// supervision behave identically everywhere; a bin that parses its
    /// own arguments or builds its own sweep forks that contract. No
    /// allowlist escape: move the logic into a spec or the shared runner.
    AdHocBin,
    /// `as u32`/`as usize`-style narrowing casts of time-, event-count-,
    /// or index-flavoured expressions in the event kernel — the exact
    /// truncation class that 1M-endpoint scaling turns from latent to
    /// live (2^32 picoseconds is 4.3 ms of simulated time).
    NarrowingCast,
    /// A bare `f64` parameter named like a physical quantity (latency,
    /// power, bandwidth, ...) with no unit suffix in a `phy`/`power`/
    /// `net` signature: callers cannot tell ns from us at the call site.
    UnitF64Param,
    /// Identifiers implying *different* unit suffixes combined additively
    /// or compared in one expression (`guard_ns + settle_ps`): a latent
    /// off-by-1000. Multiplication/division are dimensional arithmetic
    /// and exempt.
    MixedUnit,
    /// `Box::new` / `BTreeMap` / `HashMap` in a [`HOT_PATH_FILES`]
    /// source: the event kernel and the SoA packet models must not
    /// allocate per event or keep pointer-chasing node collections —
    /// at 1M endpoints the allocator and cache misses dominate. State
    /// belongs in flat `Vec`s and generational arenas. Zero budget by
    /// default; a proven-cold site can be allowlisted.
    HotPathAlloc,
    /// `partial_cmp(..)` chained into `.unwrap()` / `.expect(...)`.
    FloatCmpPanic,
    /// `==` / `!=` against a float literal.
    FloatLiteralEq,
    /// A committed `*.proptest-regressions` file anywhere in the tree.
    /// The repo's property tests are deterministic seed-loop tests (no
    /// `proptest` dependency), so these shrinker artifacts are always
    /// stale imports; a failure case worth keeping belongs in test code.
    StaleArtifact,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: &'static [Rule] = &[
        Rule::WallClock,
        Rule::AmbientRandom,
        Rule::EnvRead,
        Rule::UnorderedCollection,
        Rule::PanicSite,
        Rule::PanicIndirect,
        Rule::SliceIndex,
        Rule::FaultPathPanic,
        Rule::JobPathPanic,
        Rule::ProcessExit,
        Rule::AdHocBin,
        Rule::NarrowingCast,
        Rule::UnitF64Param,
        Rule::MixedUnit,
        Rule::HotPathAlloc,
        Rule::FloatCmpPanic,
        Rule::FloatLiteralEq,
        Rule::StaleArtifact,
    ];

    /// Stable identifier used in the allowlist and the JSON report.
    pub fn id(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::AmbientRandom => "ambient-random",
            Rule::EnvRead => "env-read",
            Rule::UnorderedCollection => "unordered-collection",
            Rule::PanicSite => "panic-site",
            Rule::PanicIndirect => "panic-indirect",
            Rule::SliceIndex => "slice-index",
            Rule::FaultPathPanic => "fault-path-panic",
            Rule::JobPathPanic => "job-path-panic",
            Rule::ProcessExit => "process-exit",
            Rule::AdHocBin => "ad-hoc-bin",
            Rule::NarrowingCast => "narrowing-cast",
            Rule::UnitF64Param => "unit-f64-param",
            Rule::MixedUnit => "mixed-unit",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::FloatCmpPanic => "float-cmp-panic",
            Rule::FloatLiteralEq => "float-literal-eq",
            Rule::StaleArtifact => "stale-artifact",
        }
    }

    /// Parses an allowlist rule identifier.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == id)
    }

    /// Whether an allowlist entry may budget this rule at all. The
    /// job-path and bin-discipline rules (and the artifact scan) have no
    /// escape hatch: the fix is always to move or rewrite the code.
    pub fn allowlistable(self) -> bool {
        !matches!(
            self,
            Rule::JobPathPanic | Rule::AdHocBin | Rule::StaleArtifact
        )
    }

    /// One-line description for the report.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "no SystemTime/Instant::now anywhere but the bench timing harness \
                 (crates/bench/src/perf.rs); measurements go through the injected clock"
            }
            Rule::AmbientRandom => {
                "no thread_rng/rand::random in result-producing crates; use StreamRng"
            }
            Rule::EnvRead => {
                "no env::var in result-producing crates outside allowlisted harness \
                 modules; results must be a function of the config, not the shell"
            }
            Rule::UnorderedCollection => {
                "no HashMap/HashSet in result-producing crates; iteration order leaks into output"
            }
            Rule::PanicSite => {
                "no .unwrap()/.expect() in non-test library code outside the shrinking allowlist"
            }
            Rule::PanicIndirect => {
                "no panic!/unreachable!/todo! inside unwrap_or_else/ok_or_else/map_or_else \
                 closures; an indirect panic is still a panic"
            }
            Rule::SliceIndex => {
                "no slice/array indexing on the supervised job path or in fault-handling \
                 code; xs[i] panics on out-of-range exactly like .unwrap()"
            }
            Rule::FaultPathPanic => {
                "no .unwrap()/.expect() in crates/net fault-handling code; \
                 a panic there crashes the experiment mid-fault"
            }
            Rule::JobPathPanic => {
                "no .unwrap()/.expect() on the supervised job path (par/sweep/supervise/\
                 error/runner); a panic there defeats panic isolation"
            }
            Rule::ProcessExit => {
                "no std::process::exit in library code; return an error and let the \
                 binary choose the exit code"
            }
            Rule::AdHocBin => {
                "no env::args/Args::parse/Sweep construction in bench binaries; \
                 route through registry_main so every bin shares one CLI contract"
            }
            Rule::NarrowingCast => {
                "no as u32/usize/i32 on time/count/index expressions in the event \
                 kernel; 2^32 ps is 4.3 ms of simulated time"
            }
            Rule::UnitF64Param => {
                "no bare f64 parameters named like physical quantities in phy/power/net \
                 signatures; add a unit suffix (_ns, _gbps, _pj) or take a newtype"
            }
            Rule::MixedUnit => {
                "no mixed unit suffixes (_ns vs _ps, _gbps vs _mbps) combined additively \
                 in one expression; convert explicitly first"
            }
            Rule::HotPathAlloc => {
                "no Box::new/BTreeMap/HashMap in the event kernel or SoA packet-model \
                 hot paths; state lives in flat Vecs and generational arenas"
            }
            Rule::FloatCmpPanic => {
                "no partial_cmp().unwrap()/expect(); NaN panics — use f64::total_cmp"
            }
            Rule::FloatLiteralEq => "no ==/!= against float literals in library code",
            Rule::StaleArtifact => {
                "no committed *.proptest-regressions files; the seed-loop property \
                 tests are deterministic, so shrinker artifacts are always stale"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule match at a source location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Finding {
    /// Rule identifier (see [`Rule::id`]).
    pub rule: String,
    /// Path relative to the repo root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One consumed allowlist budget, echoed into the report.
#[derive(Debug, Clone, Serialize)]
pub struct AllowlistUse {
    /// Rule identifier.
    pub rule: String,
    /// File the budget applies to.
    pub file: String,
    /// Budgeted number of sites.
    pub allowed: usize,
    /// Sites actually found.
    pub found: usize,
}

/// Per-rule finding totals, echoed into the report so dashboards can
/// track budgets without re-deriving them from the finding list.
#[derive(Debug, Clone, Serialize)]
pub struct RuleCount {
    /// Rule identifier.
    pub rule: String,
    /// Total sites matched, before allowlist application.
    pub findings: usize,
    /// Sites absorbed by allowlist budgets.
    pub allowlisted: usize,
}

/// The JSON report `baldur-lint` writes under `results/`.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Name and version of the analyzer.
    pub tool: String,
    /// Every rule checked, with its description.
    pub rules: Vec<RuleInfo>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Per-rule totals (pre-allowlist findings, allowlisted share).
    pub counts: Vec<RuleCount>,
    /// Violations (after allowlist application); empty on a clean tree.
    pub violations: Vec<Finding>,
    /// Allowlist budgets and how much of each was used.
    pub allowlisted: Vec<AllowlistUse>,
}

/// A rule's identifier and description, for the report.
#[derive(Debug, Clone, Serialize)]
pub struct RuleInfo {
    /// Stable identifier.
    pub id: String,
    /// One-line description.
    pub description: String,
}

/// The outcome of linting a tree.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The full report (rules, counts, violations, allowlist usage).
    pub report: Report,
}

impl Outcome {
    /// True when no violations remain after allowlist application.
    pub fn is_clean(&self) -> bool {
        self.report.violations.is_empty()
    }
}

/// Lints the repository rooted at `root` (the directory containing
/// `crates/`), fanning file scans across the deterministic `sim::par`
/// pool at the `BALDUR_THREADS`-resolved width.
///
/// # Errors
///
/// Returns a message when the tree cannot be walked, a source file cannot
/// be read, or the allowlist is malformed.
pub fn lint_repo(root: &Path) -> Result<Outcome, String> {
    lint_repo_with_threads(root, 0)
}

/// [`lint_repo`] with an explicit worker count (`0` = resolve from
/// `BALDUR_THREADS` / machine parallelism). Findings are collected in
/// file-submission order, so the outcome is byte-identical at any width.
///
/// # Errors
///
/// As [`lint_repo`].
pub fn lint_repo_with_threads(root: &Path, threads: usize) -> Result<Outcome, String> {
    let allowlist = load_allowlist(&root.join(ALLOWLIST_PATH))?;
    let files = collect_sources(root)?;
    let mut findings = scan_files(&files, threads)?;
    findings.extend(find_stale_artifacts(root)?);
    Ok(apply_allowlist(findings, &allowlist, files.len()))
}

/// Lints `crates/lint` itself with an **empty** allowlist: the analyzer
/// must hold itself to every rule it enforces, with zero budgeted sites.
/// Used by the `--self-check` flag and the `lint-self` CI step.
///
/// # Errors
///
/// As [`lint_repo`].
pub fn lint_self(root: &Path) -> Result<Outcome, String> {
    let src = root.join("crates/lint/src");
    let mut files = Vec::new();
    walk_rs(&src, root, &mut files)?;
    files.sort_by(|a, b| a.1.cmp(&b.1));
    let findings = scan_files(&files, 0)?;
    Ok(apply_allowlist(findings, &BTreeMap::new(), files.len()))
}

/// Reads and lints every file, fanning the (pure) per-file scans over the
/// deterministic pool. Sources are read serially first — I/O errors must
/// surface as `Err`, not panic a worker — and the result vector comes
/// back in submission order, so the concatenation is deterministic.
fn scan_files(files: &[(PathBuf, String)], threads: usize) -> Result<Vec<Finding>, String> {
    let mut inputs: Vec<(String, String)> = Vec::with_capacity(files.len());
    for (abs, rel) in files {
        let source =
            std::fs::read_to_string(abs).map_err(|e| format!("read {}: {e}", abs.display()))?;
        inputs.push((rel.clone(), source));
    }
    let width = baldur_sim::par::thread_count(threads);
    let per_file =
        baldur_sim::par::par_map(width, inputs, |(rel, source)| lint_source(rel, source));
    Ok(per_file.into_iter().flatten().collect())
}

/// Applies allowlist budgets per (rule, file) and assembles the report.
fn apply_allowlist(
    findings: Vec<Finding>,
    allowlist: &BTreeMap<(String, String), usize>,
    files_scanned: usize,
) -> Outcome {
    let mut by_key: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    for f in findings {
        by_key
            .entry((f.rule.clone(), f.file.clone()))
            .or_default()
            .push(f);
    }
    let mut violations = Vec::new();
    let mut allowlisted = Vec::new();
    let mut consumed: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut counts: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for r in Rule::ALL {
        counts.insert(r.id(), (0, 0));
    }
    for ((rule, file), group) in &by_key {
        let key = (rule.clone(), file.clone());
        let allowed = allowlist.get(&key).copied().unwrap_or(0);
        consumed.insert(key, group.len());
        if let Some(c) = counts.get_mut(rule.as_str()) {
            c.0 += group.len();
        }
        if group.len() > allowed {
            if allowed > 0 {
                violations.push(Finding {
                    rule: rule.clone(),
                    file: file.clone(),
                    line: 0,
                    message: format!(
                        "allowlist budget exceeded: {} sites found, {} allowed — \
                         fix the new sites; the budget never grows",
                        group.len(),
                        allowed
                    ),
                });
            }
            violations.extend(group.iter().cloned());
        } else {
            if let Some(c) = counts.get_mut(rule.as_str()) {
                c.1 += group.len();
            }
            allowlisted.push(AllowlistUse {
                rule: rule.clone(),
                file: file.clone(),
                allowed,
                found: group.len(),
            });
            if group.len() < allowed {
                violations.push(Finding {
                    rule: rule.clone(),
                    file: file.clone(),
                    line: 0,
                    message: format!(
                        "stale allowlist entry: {} sites found but {} budgeted — \
                         shrink {ALLOWLIST_PATH}",
                        group.len(),
                        allowed
                    ),
                });
            }
        }
    }
    // Allowlist entries for files with no findings at all are also stale.
    for ((rule, file), allowed) in allowlist {
        if *allowed > 0 && !consumed.contains_key(&(rule.clone(), file.clone())) {
            violations.push(Finding {
                rule: rule.clone(),
                file: file.clone(),
                line: 0,
                message: format!(
                    "stale allowlist entry: no sites found but {allowed} budgeted — \
                     remove it from {ALLOWLIST_PATH}"
                ),
            });
        }
    }
    violations.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));

    Outcome {
        report: Report {
            tool: format!("baldur-lint {}", env!("CARGO_PKG_VERSION")),
            rules: Rule::ALL
                .iter()
                .map(|r| RuleInfo {
                    id: r.id().to_string(),
                    description: r.describe().to_string(),
                })
                .collect(),
            files_scanned,
            counts: Rule::ALL
                .iter()
                .map(|r| {
                    let (f, a) = counts.get(r.id()).copied().unwrap_or((0, 0));
                    RuleCount {
                        rule: r.id().to_string(),
                        findings: f,
                        allowlisted: a,
                    }
                })
                .collect(),
            violations,
            allowlisted,
        },
    }
}

/// Lints a single source file (relative path decides rule applicability):
/// lex, build the significant-token view and scope map, run every rule
/// pass. Exposed for tests and for editor integration.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let tokens = lexer::lex(source);
    let sig = scope::significant(source, &tokens);
    let scopes = scope::analyze(&sig);
    let ctx = rules::FileCtx::new(rel_path);
    let mut findings = Vec::new();
    rules::run_passes(ctx, &sig, &scopes, &mut findings);
    findings
}

/// Scans the *whole* repository tree (not just `crates/*/src`) for banned
/// artifact files — currently `*.proptest-regressions`. Generated and
/// external directories (`.git`, `target`, `results`, `vendor`) are
/// skipped; everything else, including `tests/` at the repo root, is fair
/// game since that is exactly where such files get committed by accident.
///
/// # Errors
///
/// Returns a message when a directory cannot be walked.
pub fn find_stale_artifacts(root: &Path) -> Result<Vec<Finding>, String> {
    const SKIP_DIRS: &[&str] = &[".git", "target", "results", "vendor"];
    let mut findings = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in entries {
            paths.push(
                entry
                    .map_err(|e| format!("walk {}: {e}", dir.display()))?
                    .path(),
            );
        }
        paths.sort();
        for path in paths {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) {
                    stack.push(path);
                }
            } else if name.ends_with(".proptest-regressions") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| format!("relativize {}: {e}", path.display()))?
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                findings.push(Finding {
                    rule: Rule::StaleArtifact.id().to_string(),
                    file: rel,
                    line: 0,
                    message: "committed proptest shrinker artifact; the seed-loop property \
                              tests are deterministic — delete it (keep a worthwhile failure \
                              case as a regular test instead)"
                        .to_string(),
                });
            }
        }
    }
    findings.sort_by(|a, b| a.file.cmp(&b.file));
    Ok(findings)
}

/// All `.rs` files under `crates/*/src`, as `(absolute, repo-relative)`
/// pairs sorted by relative path.
fn collect_sources(root: &Path) -> Result<Vec<(PathBuf, String)>, String> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("read {}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk crates/: {e}"))?;
        if entry.path().is_dir() {
            crate_dirs.push(entry.path());
        }
    }
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk_rs(&src, root, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(out)
}

fn walk_rs(dir: &Path, root: &Path, out: &mut Vec<(PathBuf, String)>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        paths.push(
            entry
                .map_err(|e| format!("walk {}: {e}", dir.display()))?
                .path(),
        );
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            walk_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("relativize {}: {e}", path.display()))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((path, rel));
        }
    }
    Ok(())
}

/// Parses and validates the allowlist: `<rule-id> <repo-relative-path>
/// <max-count>` per line, `#` comments and blank lines ignored. A missing
/// file is an empty allowlist. Entries are rejected at load time when the
/// rule is unknown or has no allowlist escape ([`Rule::allowlistable`]),
/// when the budget is zero (a zero budget IS the default — the entry is
/// dead weight), or when a (rule, file) pair repeats (two budgets for one
/// key can only disagree).
///
/// # Errors
///
/// Returns a message naming the offending line for any rejected entry.
pub fn load_allowlist(path: &Path) -> Result<BTreeMap<(String, String), usize>, String> {
    let mut map = BTreeMap::new();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(map),
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(format!(
                "{}:{}: expected `<rule> <path> <count>`, got `{line}`",
                path.display(),
                idx + 1
            ));
        }
        let rule = Rule::from_id(parts[0]).ok_or_else(|| {
            format!(
                "{}:{}: unknown rule `{}`",
                path.display(),
                idx + 1,
                parts[0]
            )
        })?;
        if !rule.allowlistable() {
            return Err(format!(
                "{}:{}: rule `{rule}` has no allowlist escape — move or rewrite the code",
                path.display(),
                idx + 1
            ));
        }
        let count: usize = parts[2].parse().map_err(|e| {
            format!(
                "{}:{}: bad count `{}`: {e}",
                path.display(),
                idx + 1,
                parts[2]
            )
        })?;
        if count == 0 {
            return Err(format!(
                "{}:{}: zero budget is the default — delete the entry",
                path.display(),
                idx + 1
            ));
        }
        let key = (rule.id().to_string(), parts[1].to_string());
        if map.insert(key, count).is_some() {
            return Err(format!(
                "{}:{}: duplicate entry for `{}` in `{}`",
                path.display(),
                idx + 1,
                parts[0],
                parts[1]
            ));
        }
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_are_masked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let findings = lint_source("crates/sim/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn strings_and_comments_never_match() {
        let src = "//! Mentions Instant::now and HashMap in docs only.\n\
                   pub const HINT: &str = \"thread_rng() is forbidden\";\n\
                   pub const RAW: &str = r#\"x.unwrap()\"#;\n";
        let findings = lint_source("crates/sim/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn wall_clock_fires_repo_wide_except_perf_harness() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(lint_source("crates/sim/src/x.rs", src).len(), 1);
        assert_eq!(lint_source("crates/topo/src/x.rs", src).len(), 1);
        assert_eq!(lint_source("crates/core/src/sweep.rs", src).len(), 1);
        // Repo-wide: even non-wall crates may not read the clock...
        assert_eq!(lint_source("crates/power/src/x.rs", src).len(), 1);
        assert_eq!(lint_source("crates/bench/src/cli.rs", src).len(), 1);
        // ...except the one injected-clock harness module.
        assert!(lint_source("crates/bench/src/perf.rs", src).is_empty());
    }

    #[test]
    fn non_clock_wall_rules_stay_inside_the_wall() {
        // HashMap/env reads remain wall-crate business: outside the wall
        // they are ordinary harness code.
        let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); g(&m); }\n";
        assert!(!lint_source("crates/sim/src/x.rs", src).is_empty());
        assert!(lint_source("crates/power/src/x.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/perf.rs", src).is_empty());
    }

    #[test]
    fn env_read_flagged_inside_wall_except_harness() {
        let src = "fn f() -> Option<String> { std::env::var(\"X\").ok() }\n";
        let fs = lint_source("crates/sim/src/config.rs", src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "env-read");
        // The thread-pool module's BALDUR_THREADS read is the documented
        // harness contract.
        assert!(lint_source("crates/sim/src/par.rs", src).is_empty());
        // Outside the wall env reads are harness business.
        assert!(lint_source("crates/bench/src/cli.rs", src).is_empty());
    }

    #[test]
    fn float_literal_eq_detected_both_sides() {
        let at = |src: &str| lint_source("crates/cost/src/x.rs", &format!("fn f() {{ {src} }}\n"));
        assert_eq!(at("if x == 1.0 {}").len(), 1);
        assert_eq!(at("if 0.25 != y {}").len(), 1);
        assert!(at("if x <= 1.0 {}").is_empty());
        assert!(at("for i in 0..10 { g(i); }").is_empty());
        assert!(at("if x == 10 {}").is_empty());
        assert!(at("let y = match x { _ => 1.0 };").is_empty());
    }

    #[test]
    fn fault_path_panic_fires_in_net_fault_code() {
        // A `fault`-named file in crates/net: every site is fault-path.
        let src = "fn f(p: &Plan) { p.events.first().unwrap(); }\n";
        let fs = lint_source("crates/net/src/faults.rs", src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "fault-path-panic");
        // Elsewhere in the crate only fault-state-touching lines are.
        let src2 = "fn g() { self.fstate.apply_fault(now).expect(\"ok\"); }\n";
        let fs2 = lint_source("crates/net/src/baldur_net.rs", src2);
        assert_eq!(fs2[0].rule, "fault-path-panic");
        let src3 = "fn h() { self.queue.pop().unwrap(); }\n";
        let fs3 = lint_source("crates/net/src/baldur_net.rs", src3);
        assert_eq!(fs3[0].rule, "panic-site");
        // Outside crates/net the ordinary panic budget applies.
        let fs4 = lint_source("crates/core/src/faults.rs", src);
        assert_eq!(fs4[0].rule, "panic-site");
    }

    #[test]
    fn panic_budget_skips_bins() {
        let src = "fn main() { run().unwrap(); }\n";
        assert!(lint_source("crates/bench/src/bin/fig6.rs", src).is_empty());
        assert_eq!(lint_source("crates/bench/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn float_cmp_panic_fires_even_in_bins() {
        let src = "fn main() { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        let fs = lint_source("crates/bench/src/bin/fig6.rs", src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "float-cmp-panic");
    }

    #[test]
    fn ad_hoc_bin_rule_bans_harness_code_in_bins() {
        let src = "fn main() {\n    let a: Vec<String> = std::env::args().collect();\n    \
                   let args = Args::parse();\n    let sw = Sweep::new(0);\n}\n";
        let fs = lint_source("crates/bench/src/bin/fig6.rs", src);
        assert_eq!(fs.len(), 3, "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == "ad-hoc-bin"), "{fs:?}");
        // The shared cli/runner modules are the sanctioned home.
        assert!(lint_source("crates/bench/src/cli.rs", src)
            .iter()
            .all(|f| f.rule != "ad-hoc-bin"));
        // A conforming wrapper is clean.
        let ok = "fn main() {\n    baldur_bench::registry_main(\"fig6\")\n}\n";
        assert!(lint_source("crates/bench/src/bin/fig6.rs", ok).is_empty());
    }

    #[test]
    fn overload_control_lines_get_the_fault_path_rule() {
        // A panic on an overload-control line in `crates/net` (admission,
        // deadline expiry, starvation accounting) classifies as
        // fault-path, same as fault-handling lines.
        let src = "fn f(q: &Q) {\n    if q.len() >= ingress_cap { q.pop().unwrap(); }\n    \
                   let d = deadline_ps.checked_sub(age).expect(\"stale\");\n}\n";
        let fs = lint_source("crates/net/src/baldur_net.rs", src);
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == "fault-path-panic"), "{fs:?}");
        // The same code outside `crates/net` stays in the general budget.
        let fs = lint_source("crates/power/src/model.rs", src);
        assert!(fs.iter().all(|f| f.rule == "panic-site"), "{fs:?}");
    }

    #[test]
    fn job_path_files_get_the_stricter_panic_rule() {
        let src = "fn f() { slot.take().unwrap(); cell.get().expect(\"set\"); }\n";
        for file in JOB_PATH_FILES {
            let fs = lint_source(file, src);
            assert_eq!(fs.len(), 2, "{file}: {fs:?}");
            assert!(fs.iter().all(|f| f.rule == "job-path-panic"), "{fs:?}");
        }
        // The same code elsewhere stays under the general budget.
        let fs = lint_source("crates/core/src/experiments.rs", src);
        assert!(fs.iter().all(|f| f.rule == "panic-site"), "{fs:?}");
    }

    #[test]
    fn process_exit_banned_in_library_code_only() {
        let src = "fn f() { std::process::exit(1); }\n";
        let fs = lint_source("crates/bench/src/lib.rs", src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, "process-exit");
        // Binaries, benches, and main.rs choose their own exit codes.
        assert!(lint_source("crates/bench/src/bin/faults.rs", src).is_empty());
        assert!(lint_source("crates/bench/benches/figures.rs", src).is_empty());
        assert!(lint_source("crates/lint/src/main.rs", src).is_empty());
    }

    #[test]
    fn hot_path_alloc_fires_only_in_hot_path_files() {
        let src = "fn f() { let b = Box::new(3); let m: BTreeMap<u32, u32> = BTreeMap::new(); \
                   g(b, &m); }\n";
        // Box::new + two BTreeMap tokens in a hot-path file.
        let hot = lint_source("crates/sim/src/engine.rs", src);
        assert_eq!(
            hot.iter().filter(|f| f.rule == "hot-path-alloc").count(),
            3,
            "{hot:?}"
        );
        // Same source elsewhere in the kernel crate: BTreeMap is the
        // *recommended* replacement for HashMap there.
        assert!(lint_source("crates/sim/src/stats.rs", src)
            .iter()
            .all(|f| f.rule != "hot-path-alloc"));
        // The retired baseline models keep their map-based layout.
        assert!(lint_source("crates/net/src/baldur_net_baseline.rs", src)
            .iter()
            .all(|f| f.rule != "hot-path-alloc"));
        // HashMap in a hot-path file trips both the determinism wall and
        // the hot-path rule — one finding each.
        let hm = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); g(&m); }\n";
        let both = lint_source("crates/net/src/baldur_net.rs", hm);
        assert!(both.iter().any(|f| f.rule == "hot-path-alloc"), "{both:?}");
        assert!(
            both.iter().any(|f| f.rule == "unordered-collection"),
            "{both:?}"
        );
    }

    #[test]
    fn stale_artifact_scan_finds_proptest_regressions() {
        let root =
            std::env::temp_dir().join(format!("baldur-lint-artifact-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("tests")).expect("mkdir tests/");
        std::fs::create_dir_all(root.join("target/debug")).expect("mkdir target/");
        std::fs::write(
            root.join("tests/properties.proptest-regressions"),
            "cc deadbeef\n",
        )
        .expect("write artifact");
        // The same file under target/ is generated output and ignored.
        std::fs::write(
            root.join("target/debug/x.proptest-regressions"),
            "cc deadbeef\n",
        )
        .expect("write ignored artifact");
        let findings = find_stale_artifacts(&root).expect("scan");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "stale-artifact");
        assert_eq!(findings[0].file, "tests/properties.proptest-regressions");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn stale_artifact_scan_clean_tree_is_empty() {
        let root =
            std::env::temp_dir().join(format!("baldur-lint-artifact-clean-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("tests")).expect("mkdir tests/");
        std::fs::write(root.join("tests/properties.rs"), "// fine\n").expect("write source");
        assert!(find_stale_artifacts(&root).expect("scan").is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn allowlist_rejects_unallowlistable_zero_and_duplicate_entries() {
        let dir = std::env::temp_dir().join(format!(
            "baldur-lint-allowlist-validate-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("allowlist.txt");
        let cases: &[(&str, &str)] = &[
            (
                "job-path-panic crates/sim/src/par.rs 1\n",
                "no allowlist escape",
            ),
            (
                "ad-hoc-bin crates/bench/src/bin/x.rs 1\n",
                "no allowlist escape",
            ),
            ("panic-site crates/sim/src/x.rs 0\n", "zero budget"),
            (
                "panic-site crates/sim/src/x.rs 1\npanic-site crates/sim/src/x.rs 2\n",
                "duplicate entry",
            ),
            ("no-such-rule crates/sim/src/x.rs 1\n", "unknown rule"),
        ];
        for (text, needle) in cases {
            std::fs::write(&path, text).expect("write allowlist");
            let err = load_allowlist(&path).expect_err("entry must be rejected");
            assert!(err.contains(needle), "`{text}` -> {err}");
        }
        // A valid entry still loads.
        std::fs::write(&path, "# comment\npanic-site crates/sim/src/x.rs 2\n")
            .expect("write allowlist");
        let map = load_allowlist(&path).expect("valid allowlist loads");
        assert_eq!(
            map.get(&("panic-site".to_string(), "crates/sim/src/x.rs".to_string())),
            Some(&2)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Rule passes over the token stream.
//!
//! Every rule is a visitor over the significant tokens of one file plus
//! its scope map ([`crate::scope::Scopes`]) — no per-line regexes. The
//! scoping decisions (which crates a rule walls, which files are
//! job-path) live in [`FileCtx::new`]; the matching itself lives in one
//! pass function per rule family, dispatched from [`run_passes`].

use crate::lexer::Kind;
use crate::scope::{Scopes, Sig};
use crate::{
    Finding, Rule, HOT_PATH_FILES, JOB_PATH_FILES, WALL_CLOCK_EXEMPT_FILES, WALL_CRATES, WALL_FILES,
};

/// Rust keywords, used to tell `ident[expr]` indexing apart from array
/// patterns/literals after keywords (`let [a, b] = …`, `for x in [1, 2]`).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

/// Unit suffixes recognised by the unit-safety family, grouped by the
/// dimension they imply. Single-letter units are excluded on purpose —
/// `_s`/`_w` style names are too ambiguous to lint on.
const UNIT_WORDS: &[&str] = &[
    // time
    "fs", "ps", "ns", "us", "ms", "sec", "secs", // rate / frequency
    "hz", "khz", "mhz", "ghz", "bps", "kbps", "mbps", "gbps", "tbps", // energy / power
    "pj", "nj", "uj", "mj", "mw", "uw", "kw", // data / link budget
    "bits", "bytes", "kb", "mb", "gb", "db", "dbm", // geometry
    "nm", "um", "mm", "km",
];

/// Physical-quantity root words: an `f64` parameter whose name contains
/// one of these but no unit word is dimensionally ambiguous.
const QUANTITY_WORDS: &[&str] = &[
    "latency",
    "delay",
    "bandwidth",
    "throughput",
    "power",
    "energy",
    "time",
    "duration",
    "period",
    "interval",
    "timeout",
    "freq",
    "frequency",
    "wavelength",
];

/// Identifier words that mark an expression as time-, event-count-, or
/// index-flavoured for the narrowing-cast rule.
const KERNEL_VALUE_WORDS: &[&str] = &[
    "time", "times", "tick", "ticks", "event", "events", "count", "counter", "counts", "idx",
    "index", "indices", "seq", "epoch", "epochs", "now", "at", "deadline", "horizon", "len", "ps",
    "ns", "us",
];

/// Integer types a cast can truncate into (on 32-bit targets `usize`
/// included — the event kernel must not assume a 64-bit host).
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize"];

/// Harness modules where `env::var` is part of the documented contract
/// (`BALDUR_THREADS` worker-count resolution) rather than a determinism
/// leak. Everything else inside the wall gets flagged.
pub const ENV_HARNESS_FILES: &[&str] = &["crates/sim/src/par.rs"];

/// Per-file scoping flags, derived once from the relative path.
#[derive(Debug, Clone, Copy)]
pub struct FileCtx<'a> {
    /// Repo-relative `/`-separated path.
    pub rel: &'a str,
    /// `crates/<name>/…` crate directory name, if any.
    pub crate_name: Option<&'a str>,
    /// Determinism wall applies (wall crate, or an extra wall file).
    pub in_wall: bool,
    /// Wall-clock reads are banned (repo-wide, minus the injected-clock
    /// perf harness in [`WALL_CLOCK_EXEMPT_FILES`]).
    pub clock_scope: bool,
    /// Panic rules apply (library code: not `src/bin/`, not `benches/`).
    pub panic_scope: bool,
    /// File lives in `crates/net`.
    pub net_crate: bool,
    /// A `fault`-named file in `crates/net`: every panic site is
    /// fault-path, and the panic-surface-v2 rules apply in full.
    pub fault_file: bool,
    /// One of [`JOB_PATH_FILES`].
    pub job_path: bool,
    /// `process::exit` is banned (library code that is not a `main.rs`).
    pub exit_scope: bool,
    /// A bench binary: must stay a thin registry wrapper.
    pub bin_harness: bool,
    /// Event-kernel crate: narrowing-cast rule applies.
    pub kernel: bool,
    /// Unit-safety signature rule applies (phy/power/net).
    pub unit_sig: bool,
    /// Mixed-unit expression rule applies (quantitative crates).
    pub unit_expr: bool,
    /// Slice-index rule applies (supervised job path + net fault files).
    pub index_scope: bool,
    /// One of [`HOT_PATH_FILES`]: per-event allocation is banned.
    pub hot_path: bool,
}

impl<'a> FileCtx<'a> {
    /// Derives every scoping flag from a repo-relative path.
    pub fn new(rel: &'a str) -> Self {
        let crate_name = crate_of(rel);
        let is = |c: &str| crate_name == Some(c);
        let in_wall =
            crate_name.is_some_and(|c| WALL_CRATES.contains(&c)) || WALL_FILES.contains(&rel);
        let panic_scope = !rel.contains("/src/bin/") && !rel.contains("/benches/");
        let net_crate = is("net");
        let lower = rel.to_ascii_lowercase();
        let fault_file = net_crate && (lower.contains("fault") || lower.contains("oracle"));
        let job_path = JOB_PATH_FILES.contains(&rel);
        FileCtx {
            rel,
            crate_name,
            in_wall,
            clock_scope: !WALL_CLOCK_EXEMPT_FILES.contains(&rel),
            panic_scope,
            net_crate,
            fault_file,
            job_path,
            exit_scope: panic_scope && !rel.ends_with("/main.rs"),
            bin_harness: rel.contains("crates/bench/src/bin/"),
            kernel: is("sim"),
            unit_sig: is("phy") || is("power") || is("net"),
            unit_expr: is("phy") || is("power") || is("net") || is("sim") || is("tl"),
            index_scope: job_path || fault_file,
            hot_path: HOT_PATH_FILES.contains(&rel),
        }
    }
}

/// The crate directory name (`sim`, `net`, …) of a `crates/<name>/…`
/// relative path.
pub fn crate_of(rel_path: &str) -> Option<&str> {
    let mut parts = rel_path.split('/');
    if parts.next() != Some("crates") {
        return None;
    }
    parts.next()
}

/// Shared pass state: the token view, scope map, and finding sink.
struct Pass<'a, 'f> {
    ctx: FileCtx<'a>,
    sig: &'a [Sig<'a>],
    scopes: &'a Scopes,
    /// Lines (1-based) carrying a `fault`-ish identifier; used by the
    /// fault-path classification in `crates/net`.
    fault_lines: Vec<u32>,
    out: &'f mut Vec<Finding>,
}

impl<'a, 'f> Pass<'a, 'f> {
    fn text(&self, i: usize) -> &'a str {
        self.sig.get(i).map_or("", |t| t.text)
    }

    fn kind(&self, i: usize) -> Option<Kind> {
        self.sig.get(i).map(|t| t.kind)
    }

    fn line(&self, i: usize) -> u32 {
        self.sig.get(i).map_or(0, |t| t.line)
    }

    fn is_ident(&self, i: usize, name: &str) -> bool {
        self.sig
            .get(i)
            .is_some_and(|t| t.kind == Kind::Ident && t.text == name)
    }

    fn live(&self, i: usize) -> bool {
        !self.scopes.in_test.get(i).copied().unwrap_or(false)
    }

    fn emit(&mut self, rule: Rule, i: usize, message: String) {
        self.out.push(Finding {
            rule: rule.id().to_string(),
            file: self.ctx.rel.to_string(),
            line: self.line(i) as usize,
            message,
        });
    }

    /// Index of the matching `)` for the `(` at `open`.
    fn match_paren(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for k in open..self.sig.len() {
            match self.text(k) {
                "(" => depth += 1,
                ")" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
        }
        self.sig.len().saturating_sub(1)
    }

    /// True when the statement window ending at `i` (scanning back to a
    /// `;`/`{`/`}` boundary, bounded) contains the identifier `name`.
    fn stmt_contains_back(&self, i: usize, name: &str) -> bool {
        let mut k = i;
        for _ in 0..64 {
            if k == 0 {
                return false;
            }
            k -= 1;
            match self.text(k) {
                ";" | "{" | "}" => return false,
                t if self.kind(k) == Some(Kind::Ident) && t == name => return true,
                _ => {}
            }
        }
        false
    }
}

/// Splits an identifier into lowercase words at `_` boundaries.
fn words(ident: &str) -> Vec<String> {
    ident
        .split('_')
        .filter(|w| !w.is_empty())
        .map(str::to_ascii_lowercase)
        .collect()
}

/// The unit a name implies, judged by its final `_`-separated word.
fn unit_of(ident: &str) -> Option<&'static str> {
    let w = words(ident);
    let last = w.last()?;
    UNIT_WORDS.iter().copied().find(|u| u == last)
}

/// Runs every rule pass over one file, appending findings in token order.
pub fn run_passes(ctx: FileCtx<'_>, sig: &[Sig<'_>], scopes: &Scopes, out: &mut Vec<Finding>) {
    let fault_lines = if ctx.net_crate && !ctx.fault_file {
        // Fault-handling *and* overload-control lines: a panic while
        // shedding load (admission refusal, deadline expiry, starvation
        // accounting) is as bad as one while handling a fault — both run
        // exactly when the system is least able to afford it.
        sig.iter()
            .filter(|t| {
                t.kind == Kind::Ident && {
                    let l = t.text.to_ascii_lowercase();
                    l.contains("fault")
                        || l.contains("overload")
                        || l.contains("ingress")
                        || l.contains("deadline")
                        || l.contains("expire")
                        || l.contains("starv")
                }
            })
            .map(|t| t.line)
            .collect()
    } else {
        Vec::new()
    };
    let mut p = Pass {
        ctx,
        sig,
        scopes,
        fault_lines,
        out,
    };
    determinism_pass(&mut p);
    panic_pass(&mut p);
    slice_index_pass(&mut p);
    narrowing_cast_pass(&mut p);
    unit_signature_pass(&mut p);
    mixed_unit_pass(&mut p);
    harness_pass(&mut p);
    float_literal_pass(&mut p);
    hot_path_alloc_pass(&mut p);
}

/// Hot-path allocation: `Box::new`, `BTreeMap`, or `HashMap` in the
/// event kernel or a SoA packet model. One `Box::new` per event is one
/// malloc per event — at 1M endpoints and tens of millions of events
/// the allocator dominates; node-based maps add a cache miss per
/// lookup on top. Flat `Vec`s and generational arenas only.
fn hot_path_alloc_pass(p: &mut Pass<'_, '_>) {
    if !p.ctx.hot_path {
        return;
    }
    for i in 0..p.sig.len() {
        if !p.live(i) || p.kind(i) != Some(Kind::Ident) {
            continue;
        }
        let what = match p.text(i) {
            "Box" if p.text(i + 1) == "::" && p.is_ident(i + 2, "new") => "`Box::new`",
            "BTreeMap" => "`BTreeMap`",
            "HashMap" => "`HashMap`",
            _ => continue,
        };
        let in_fn = p
            .scopes
            .fn_name(i)
            .map_or(String::new(), |f| format!(" (in fn `{f}`)"));
        p.emit(
            Rule::HotPathAlloc,
            i,
            format!(
                "{what} in kernel/model hot-path code — per-event allocation and \
                 node-per-entry maps do not survive 1M endpoints; use a flat Vec or \
                 an arena, or prove the site cold and allowlist it{in_fn}"
            ),
        );
    }
}

/// Determinism family: wall-clock reads (repo-wide, minus the
/// injected-clock perf harness), plus ambient randomness, environment
/// reads, and unordered collections inside the wall.
fn determinism_pass(p: &mut Pass<'_, '_>) {
    let wall = p.ctx.in_wall;
    let clock = p.ctx.clock_scope;
    if !wall && !clock {
        return;
    }
    let env_exempt = ENV_HARNESS_FILES.contains(&p.ctx.rel);
    for i in 0..p.sig.len() {
        if !p.live(i) || p.kind(i) != Some(Kind::Ident) {
            continue;
        }
        let in_fn = p
            .scopes
            .fn_name(i)
            .map_or(String::new(), |f| format!(" (in fn `{f}`)"));
        match p.text(i) {
            "Instant" if clock && p.text(i + 1) == "::" && p.is_ident(i + 2, "now") => {
                p.emit(
                    Rule::WallClock,
                    i,
                    format!(
                        "wall-clock read `Instant::now` outside the injected-clock \
                         perf harness{in_fn}"
                    ),
                );
            }
            "SystemTime" if clock => {
                p.emit(
                    Rule::WallClock,
                    i,
                    format!("`SystemTime` has no place outside the perf harness{in_fn}"),
                );
            }
            "thread_rng" if wall => {
                p.emit(
                    Rule::AmbientRandom,
                    i,
                    format!("ambient randomness `thread_rng`; derive a StreamRng instead{in_fn}"),
                );
            }
            "rand" if wall && p.text(i + 1) == "::" && p.is_ident(i + 2, "random") => {
                p.emit(
                    Rule::AmbientRandom,
                    i,
                    format!("ambient randomness `rand::random`; derive a StreamRng instead{in_fn}"),
                );
            }
            "env"
                if wall
                    && !env_exempt
                    && p.text(i + 1) == "::"
                    && (p.is_ident(i + 2, "var") || p.is_ident(i + 2, "var_os")) =>
            {
                p.emit(
                    Rule::EnvRead,
                    i,
                    format!(
                        "environment read `env::{}` in walled code: results must be a \
                         function of the config, not the shell{in_fn}",
                        p.text(i + 2)
                    ),
                );
            }
            t @ ("HashMap" | "HashSet") if wall => {
                p.emit(
                    Rule::UnorderedCollection,
                    i,
                    format!(
                        "unordered `{t}` in a result-producing crate; \
                         use BTreeMap/BTreeSet or an index-keyed Vec{in_fn}"
                    ),
                );
            }
            _ => {}
        }
    }
}

/// Panic family: direct `.unwrap()`/`.expect(` sites (classified into the
/// general, fault-path, or job-path budget), `partial_cmp` chains (float
/// hazard instead), and the v2 indirect surface — panicking closures
/// passed to `unwrap_or_else`-style adaptors, which the old line regex
/// could not see because no `.unwrap()`/`.expect(` substring exists.
fn panic_pass(p: &mut Pass<'_, '_>) {
    for i in 0..p.sig.len() {
        if !p.live(i) || p.text(i) != "." || p.kind(i + 1) != Some(Kind::Ident) {
            continue;
        }
        let method = p.text(i + 1);
        let site = i + 1;
        match method {
            "unwrap" if p.text(i + 2) == "(" && p.text(i + 3) == ")" => {
                self::direct_panic_site(p, site, "`.unwrap()`");
            }
            "expect" if p.text(i + 2) == "(" => {
                self::direct_panic_site(p, site, "`.expect(..)`");
            }
            "unwrap_or_else" | "ok_or_else" | "map_or_else"
                if p.ctx.panic_scope && p.text(i + 2) == "(" =>
            {
                let close = p.match_paren(i + 2);
                let panics = (i + 3..close).any(|k| {
                    p.kind(k) == Some(Kind::Ident)
                        && matches!(
                            p.text(k),
                            "panic" | "unreachable" | "todo" | "unimplemented"
                        )
                        && p.text(k + 1) == "!"
                });
                if panics {
                    let in_fn = p
                        .scopes
                        .fn_name(site)
                        .map_or(String::new(), |f| format!(" (in fn `{f}`)"));
                    p.emit(
                        Rule::PanicIndirect,
                        site,
                        format!(
                            "`.{method}(..)` closure panics — an indirect panic site the \
                             line regex could not see; return the error instead{in_fn}"
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Classifies and emits one direct `.unwrap()`/`.expect(` site. The
/// float-hazard variant applies everywhere (a NaN panics in a bench
/// binary too); the panic-budget variants only in library scope.
fn direct_panic_site(p: &mut Pass<'_, '_>, site: usize, what: &str) {
    if p.stmt_contains_back(site, "partial_cmp") {
        p.emit(
            Rule::FloatCmpPanic,
            site,
            "partial_cmp().unwrap()/expect() panics on NaN; use f64::total_cmp".to_string(),
        );
        return;
    }
    if !p.ctx.panic_scope {
        return;
    }
    let line = p.line(site);
    let fault_path = p.ctx.fault_file || (p.ctx.net_crate && p.fault_lines.contains(&line));
    let (rule, scope) = if p.ctx.job_path {
        (Rule::JobPathPanic, "supervised job-path")
    } else if fault_path {
        (Rule::FaultPathPanic, "fault-handling")
    } else {
        (Rule::PanicSite, "library")
    };
    p.emit(
        rule,
        site,
        format!("{what} in {scope} code; handle the None/Err or allowlist it"),
    );
}

/// Panic-surface v2: slice/array indexing on the supervised job path and
/// in fault-handling files. `xs[i]` panics on out-of-range exactly like
/// `.unwrap()` — and the old regex had no rule for it at all.
fn slice_index_pass(p: &mut Pass<'_, '_>) {
    if !p.ctx.index_scope {
        return;
    }
    for i in 1..p.sig.len() {
        if !p.live(i) || p.text(i) != "[" {
            continue;
        }
        // Indexing only: the `[` must follow a value expression — an
        // identifier (not a keyword), a `)` or `]`, or a literal. This
        // excludes attributes (`#[…]`), array types/literals, patterns,
        // and macro brackets (`vec![…]`).
        let prev_ok = match p.kind(i - 1) {
            Some(Kind::Ident) => !KEYWORDS.contains(&p.text(i - 1)),
            Some(Kind::Punct) => matches!(p.text(i - 1), ")" | "]"),
            _ => false,
        };
        if !prev_ok {
            continue;
        }
        let in_fn = p
            .scopes
            .fn_name(i)
            .map_or(String::new(), |f| format!(" (in fn `{f}`)"));
        p.emit(
            Rule::SliceIndex,
            i,
            format!(
                "slice/array indexing panics on out-of-range — this code must stay \
                 panic-free; use .get() or prove the bound and allowlist it{in_fn}"
            ),
        );
    }
}

/// Narrowing-cast family: `as u32`-style truncations of time-, event-, or
/// index-flavoured expressions in the event kernel. At 1K endpoints these
/// casts are latent; at 1M endpoints and >2^32 events they go live.
fn narrowing_cast_pass(p: &mut Pass<'_, '_>) {
    if !p.ctx.kernel {
        return;
    }
    for i in 0..p.sig.len() {
        if !p.live(i) || !p.is_ident(i, "as") || p.kind(i + 1) != Some(Kind::Ident) {
            continue;
        }
        let target = p.text(i + 1);
        if !NARROW_TARGETS.contains(&target) {
            continue;
        }
        // Walk the cast-ee window back to a statement/assignment boundary
        // and look for a kernel value word among its identifiers.
        let mut hit = false;
        let mut k = i;
        for _ in 0..16 {
            if k == 0 {
                break;
            }
            k -= 1;
            let t = p.text(k);
            if matches!(t, ";" | "{" | "}" | "," | "=" | "let" | "return") {
                break;
            }
            if p.kind(k) == Some(Kind::Ident)
                && words(t)
                    .iter()
                    .any(|w| KERNEL_VALUE_WORDS.contains(&w.as_str()))
            {
                hit = true;
                break;
            }
        }
        if hit {
            let in_fn = p
                .scopes
                .fn_name(i)
                .map_or(String::new(), |f| format!(" (in fn `{f}`)"));
            p.emit(
                Rule::NarrowingCast,
                i,
                format!(
                    "`as {target}` can truncate a time/count/index value — the exact bug \
                     class 1M-endpoint scaling turns live; use u64 or prove the bound \
                     and allowlist it{in_fn}"
                ),
            );
        }
    }
}

/// Unit-safety (signatures): a bare `f64` parameter named like a physical
/// quantity but carrying no unit suffix is dimensionally ambiguous — the
/// caller cannot tell ns from us or pJ from nJ at the call site.
fn unit_signature_pass(p: &mut Pass<'_, '_>) {
    if !p.ctx.unit_sig {
        return;
    }
    let mut i = 0;
    while i + 1 < p.sig.len() {
        if !(p.live(i) && p.is_ident(i, "fn") && p.kind(i + 1) == Some(Kind::Ident)) {
            i += 1;
            continue;
        }
        let fn_name = p.text(i + 1);
        // Find the parameter list opener (skipping generics).
        let mut j = i + 2;
        let mut angle = 0usize;
        while j < p.sig.len() {
            match p.text(j) {
                "<" => angle += 1,
                ">" => angle = angle.saturating_sub(1),
                "(" if angle == 0 => break,
                ";" | "{" => break,
                _ => {}
            }
            j += 1;
        }
        if p.text(j) != "(" {
            i = j;
            continue;
        }
        let close = p.match_paren(j);
        // Walk params at depth 1, tracking `name : type` pairs.
        let mut depth = 0usize;
        let mut k = j;
        while k < close {
            match p.text(k) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                ":" if depth == 1 && p.text(k + 1) != ":" && p.text(k.wrapping_sub(1)) != ":" => {
                    let name = p.text(k - 1);
                    // Type is exactly `f64` (possibly `&f64`) up to the
                    // next top-level `,` or the closing paren.
                    let ty_first = if p.text(k + 1) == "&" { k + 2 } else { k + 1 };
                    let bare_f64 =
                        p.is_ident(ty_first, "f64") && matches!(p.text(ty_first + 1), "," | ")");
                    if bare_f64 && p.kind(k - 1) == Some(Kind::Ident) {
                        let w = words(name);
                        let quantity = w.iter().any(|x| QUANTITY_WORDS.contains(&x.as_str()));
                        let has_unit = w.iter().any(|x| UNIT_WORDS.contains(&x.as_str()));
                        if quantity && !has_unit {
                            p.emit(
                                Rule::UnitF64Param,
                                k - 1,
                                format!(
                                    "bare `f64` parameter `{name}` in fn `{fn_name}` names a \
                                     physical quantity with no unit — add a unit suffix \
                                     (`{name}_ns`, `{name}_gbps`, …) or take a newtype"
                                ),
                            );
                        }
                    }
                }
                _ => {}
            }
            k += 1;
        }
        i = close + 1;
    }
}

/// Unit-safety (expressions): identifiers implying *different* units
/// combined additively or compared in one expression. `guard_ns +
/// settle_ps` is a latent off-by-1000; multiplication/division are
/// legitimate dimensional arithmetic and exempt.
fn mixed_unit_pass(p: &mut Pass<'_, '_>) {
    if !p.ctx.unit_expr {
        return;
    }
    for i in 1..p.sig.len() {
        if !p.live(i) || p.kind(i) != Some(Kind::Punct) {
            continue;
        }
        if !matches!(
            p.text(i),
            "+" | "-" | "+=" | "-=" | "<" | ">" | "<=" | ">=" | "==" | "!="
        ) {
            continue;
        }
        // Nearest identifier on each side, within the expression.
        let left = (0..i)
            .rev()
            .take(8)
            .take_while(|&k| !matches!(p.text(k), ";" | "{" | "}" | ","))
            .find(|&k| p.kind(k) == Some(Kind::Ident));
        let right = (i + 1..p.sig.len())
            .take(8)
            .take_while(|&k| !matches!(p.text(k), ";" | "{" | "}" | ","))
            .find(|&k| p.kind(k) == Some(Kind::Ident));
        let (Some(l), Some(r)) = (left, right) else {
            continue;
        };
        let (Some(lu), Some(ru)) = (unit_of(p.text(l)), unit_of(p.text(r))) else {
            continue;
        };
        if lu != ru {
            p.emit(
                Rule::MixedUnit,
                i,
                format!(
                    "`{}` ({lu}) and `{}` ({ru}) combined with `{}` — mixed units in one \
                     expression; convert explicitly first",
                    p.text(l),
                    p.text(r),
                    p.text(i)
                ),
            );
        }
    }
}

/// Process-exit and ad-hoc-bin rules (harness discipline).
fn harness_pass(p: &mut Pass<'_, '_>) {
    for i in 0..p.sig.len() {
        if !p.live(i) || p.kind(i) != Some(Kind::Ident) {
            continue;
        }
        if p.ctx.exit_scope
            && p.text(i) == "process"
            && p.text(i + 1) == "::"
            && p.is_ident(i + 2, "exit")
        {
            p.emit(
                Rule::ProcessExit,
                i,
                "`process::exit` in library code; return an error and let the binary exit"
                    .to_string(),
            );
        }
        if p.ctx.bin_harness {
            let pat = if p.text(i) == "env" && p.text(i + 1) == "::" && p.is_ident(i + 2, "args") {
                Some("env::args")
            } else if p.text(i) == "Args" && p.text(i + 1) == "::" && p.is_ident(i + 2, "parse") {
                Some("Args::parse")
            } else if p.text(i) == "Sweep" && p.text(i + 1) == "::" {
                Some("Sweep::")
            } else {
                None
            };
            if let Some(pat) = pat {
                p.emit(
                    Rule::AdHocBin,
                    i,
                    format!(
                        "`{pat}` in a bench binary; bins are thin wrappers — declare \
                         the knob on the experiment spec and call registry_main"
                    ),
                );
            }
        }
    }
}

/// `==`/`!=` against a float literal (either side), in any crate.
fn float_literal_pass(p: &mut Pass<'_, '_>) {
    for i in 0..p.sig.len() {
        if !p.live(i) || !matches!(p.text(i), "==" | "!=") {
            continue;
        }
        let next_float = match p.kind(i + 1) {
            Some(Kind::Float) => true,
            Some(Kind::Punct) if p.text(i + 1) == "-" => p.kind(i + 2) == Some(Kind::Float),
            _ => false,
        };
        let prev_float = i > 0 && p.kind(i - 1) == Some(Kind::Float);
        if next_float || prev_float {
            p.emit(
                Rule::FloatLiteralEq,
                i,
                format!(
                    "`{}` against a float literal; compare with a tolerance",
                    p.text(i)
                ),
            );
        }
    }
}

//! `baldur-lint`: determinism/panic/unit/overflow static analysis.
//!
//! Usage: `cargo run -p baldur-lint [-- --root <repo-root>] [--self-check]`
//!
//! Scans `crates/*/src` with the token-level engine, prints `file:line`
//! diagnostics for every violation, writes a JSON report to
//! `results/lint.json`, and exits nonzero when the tree is not clean.
//! `--self-check` instead lints `crates/lint` itself with an empty
//! allowlist (the analyzer obeys every rule it enforces) and writes no
//! report.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut self_check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(value) => root = PathBuf::from(value),
                None => {
                    eprintln!("baldur-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--self-check" => self_check = true,
            "--help" | "-h" => {
                println!("usage: baldur-lint [--root <repo-root>] [--self-check]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("baldur-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let result = if self_check {
        baldur_lint::lint_self(&root)
    } else {
        baldur_lint::lint_repo(&root)
    };
    let outcome = match result {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("baldur-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if !self_check {
        let report_path = root.join(baldur_lint::REPORT_PATH);
        if let Some(parent) = report_path.parent() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("baldur-lint: create {}: {e}", parent.display());
                return ExitCode::from(2);
            }
        }
        let json = match serde_json::to_string_pretty(&outcome.report) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("baldur-lint: serialize report: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(&report_path, json + "\n") {
            eprintln!("baldur-lint: write {}: {e}", report_path.display());
            return ExitCode::from(2);
        }
    }

    for finding in &outcome.report.violations {
        eprintln!("{finding}");
    }
    let budgeted: usize = outcome.report.allowlisted.iter().map(|a| a.found).sum();
    let what = if self_check { "self-check: " } else { "" };
    eprintln!(
        "baldur-lint: {what}{} files scanned, {} violations, {} allowlisted sites",
        outcome.report.files_scanned,
        outcome.report.violations.len(),
        budgeted,
    );
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

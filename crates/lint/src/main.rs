//! `baldur-lint`: determinism/panic/float static analysis for this repo.
//!
//! Usage: `cargo run -p baldur-lint [-- --root <repo-root>]`
//!
//! Scans `crates/*/src`, prints `file:line` diagnostics for every
//! violation, writes a JSON report to `results/lint_report.json`, and
//! exits nonzero when the tree is not clean.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(value) => root = PathBuf::from(value),
                None => {
                    eprintln!("baldur-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: baldur-lint [--root <repo-root>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("baldur-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let outcome = match baldur_lint::lint_repo(&root) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("baldur-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let report_path = root.join(baldur_lint::REPORT_PATH);
    if let Some(parent) = report_path.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("baldur-lint: create {}: {e}", parent.display());
            return ExitCode::from(2);
        }
    }
    let json = match serde_json::to_string_pretty(&outcome.report) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("baldur-lint: serialize report: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = std::fs::write(&report_path, json + "\n") {
        eprintln!("baldur-lint: write {}: {e}", report_path.display());
        return ExitCode::from(2);
    }

    for finding in &outcome.report.violations {
        eprintln!("{finding}");
    }
    let budgeted: usize = outcome.report.allowlisted.iter().map(|a| a.found).sum();
    eprintln!(
        "baldur-lint: {} files scanned, {} violations, {} allowlisted panic-budget sites; report: {}",
        outcome.report.files_scanned,
        outcome.report.violations.len(),
        budgeted,
        report_path.display()
    );
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

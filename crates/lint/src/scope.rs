//! Item/scope tracking over the token stream.
//!
//! Rule passes need three pieces of context per token: is it inside a
//! `#[cfg(test)]`/`#[test]` region (exempt from every rule), which `fn`
//! item encloses it (for diagnostics), and where statement boundaries lie.
//! This module computes the first two in one pass over the *significant*
//! (trivia-free) token slice. Because it walks tokens rather than raw
//! text, braces inside strings or comments can never desynchronise the
//! matcher — a failure mode the old character-walking mask had to scrub
//! its way around.

use crate::lexer::Kind;

/// A significant token as seen by scope analysis and rule passes: the
/// original [`crate::lexer::Token`] resolved against its source.
#[derive(Debug, Clone, Copy)]
pub struct Sig<'a> {
    /// Token classification.
    pub kind: Kind,
    /// Token text.
    pub text: &'a str,
    /// 1-based line of the token's first byte.
    pub line: u32,
}

/// Per-token scope context for one file.
#[derive(Debug)]
pub struct Scopes {
    /// `true` when the token at this index is inside a `#[test]` or
    /// `#[cfg(test)]` item (attribute included).
    pub in_test: Vec<bool>,
    /// Index into [`Scopes::fn_names`] of the innermost enclosing `fn`,
    /// if any.
    pub fn_of: Vec<Option<usize>>,
    /// Names of every `fn` item, in source order.
    pub fn_names: Vec<String>,
}

impl Scopes {
    /// Name of the innermost function enclosing token `i`, for messages.
    pub fn fn_name(&self, i: usize) -> Option<&str> {
        let idx = *self.fn_of.get(i)?;
        self.fn_names.get(idx?).map(String::as_str)
    }
}

/// Finds the matching `}` for the `{` at `open` (indices into `toks`),
/// returning the index of the closer (or the last token when unbalanced).
fn match_brace(toks: &[Sig<'_>], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == Kind::Punct {
            match t.text {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Scans forward from `i` to the end of an attribute's item: skips any
/// further `#[...]` attributes, then runs to the item's opening `{` (whose
/// matching `}` ends the item) or a terminating `;`. Returns the index of
/// the item's final token.
fn item_end(toks: &[Sig<'_>], mut i: usize) -> usize {
    // Skip stacked attributes.
    while i + 1 < toks.len() && toks[i].text == "#" && toks[i + 1].text == "[" {
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < toks.len() {
            match toks[j].text {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        i = j + 1;
    }
    while i < toks.len() {
        match toks[i].text {
            "{" => return match_brace(toks, i),
            ";" => return i,
            _ => i += 1,
        }
    }
    toks.len().saturating_sub(1)
}

/// True when the attribute body `toks[start..end]` (exclusive of the
/// surrounding `#[`/`]`) marks a test region: `test`, `cfg(test)`, or any
/// `cfg(...)` whose arguments mention `test`.
fn is_test_attr(toks: &[Sig<'_>]) -> bool {
    let idents: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == Kind::Ident)
        .map(|t| t.text)
        .collect();
    match idents.first() {
        Some(&"test") => idents.len() == 1,
        // `cfg(test)` / `cfg(all(test, …))` mask; `cfg(not(test))` is
        // live code and must not.
        Some(&"cfg") => idents.iter().any(|&t| t == "test") && !idents.iter().any(|&t| t == "not"),
        _ => false,
    }
}

/// Computes test masking and enclosing-`fn` context for a significant
/// token slice.
pub fn analyze(toks: &[Sig<'_>]) -> Scopes {
    let n = toks.len();
    let mut in_test = vec![false; n];
    let mut fn_of: Vec<Option<usize>> = vec![None; n];
    let mut fn_names: Vec<String> = Vec::new();

    // Test regions: every `#[test]` / `#[cfg(test)]` attribute claims its
    // item, attribute through closing brace (or semicolon).
    let mut i = 0;
    while i + 1 < n {
        if toks[i].text == "#" && toks[i + 1].text == "[" {
            let mut depth = 0usize;
            let mut j = i + 1;
            while j < n {
                match toks[j].text {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if j < n && is_test_attr(&toks[i + 2..j]) {
                let end = item_end(toks, i);
                for flag in in_test.iter_mut().take(end + 1).skip(i) {
                    *flag = true;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }

    // Function extents: `fn name … { … }`. Later (nested) intervals
    // overwrite earlier ones, so each token maps to its innermost fn.
    let mut k = 0;
    while k + 1 < n {
        if toks[k].kind == Kind::Ident && toks[k].text == "fn" && toks[k + 1].kind == Kind::Ident {
            let name = toks[k + 1].text.to_string();
            // Walk to the body's `{` (a `;` first means a trait method
            // signature or extern decl — no body, nothing to claim).
            let mut j = k + 2;
            let mut body = None;
            while j < n {
                match toks[j].text {
                    "{" => {
                        body = Some(j);
                        break;
                    }
                    ";" => break,
                    _ => j += 1,
                }
            }
            if let Some(open) = body {
                let close = match_brace(toks, open);
                let idx = fn_names.len();
                fn_names.push(name);
                for slot in fn_of.iter_mut().take(close + 1).skip(k) {
                    *slot = Some(idx);
                }
            }
        }
        k += 1;
    }

    Scopes {
        in_test,
        fn_of,
        fn_names,
    }
}

/// Builds the significant-token view of a lexed file: trivia dropped,
/// texts resolved.
pub fn significant<'a>(src: &'a str, tokens: &[crate::lexer::Token]) -> Vec<Sig<'a>> {
    tokens
        .iter()
        .filter(|t| !matches!(t.kind, Kind::Ws | Kind::LineComment | Kind::BlockComment))
        .map(|t| Sig {
            kind: t.kind,
            text: t.text(src),
            line: t.line,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scopes_of(src: &str) -> (Vec<Sig<'_>>, Scopes) {
        let toks = lex(src);
        let sig = significant(src, &toks);
        let sc = analyze(&sig);
        (sig, sc)
    }

    fn idx_of<'a>(sig: &[Sig<'a>], text: &str) -> usize {
        sig.iter()
            .position(|t| t.text == text)
            .unwrap_or_else(|| panic!("token `{text}` not found"))
    }

    #[test]
    fn cfg_test_masks_the_whole_module() {
        let src = "fn lib() { work(); }\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() { more(); }\n";
        let (sig, sc) = scopes_of(src);
        assert!(!sc.in_test[idx_of(&sig, "work")]);
        assert!(sc.in_test[idx_of(&sig, "unwrap")]);
        assert!(!sc.in_test[idx_of(&sig, "more")]);
    }

    #[test]
    fn braces_inside_strings_do_not_desync_the_mask() {
        let src =
            "#[cfg(test)]\nmod tests { const S: &str = \"}}}{{{\"; }\nfn live() { x.unwrap(); }\n";
        let (sig, sc) = scopes_of(src);
        assert!(
            !sc.in_test[idx_of(&sig, "unwrap")],
            "code after the test module must be live"
        );
    }

    #[test]
    fn stacked_attributes_are_skipped_to_the_item() {
        let src = "#[test]\n#[ignore]\nfn t() { boom(); }\nfn live() {}\n";
        let (sig, sc) = scopes_of(src);
        assert!(sc.in_test[idx_of(&sig, "boom")]);
        assert!(!sc.in_test[idx_of(&sig, "live")]);
    }

    #[test]
    fn fn_names_resolve_innermost() {
        let src = "fn outer() { fn inner() { deep(); } shallow(); }\n";
        let (sig, sc) = scopes_of(src);
        assert_eq!(sc.fn_name(idx_of(&sig, "deep")), Some("inner"));
        assert_eq!(sc.fn_name(idx_of(&sig, "shallow")), Some("outer"));
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(feature = \"validate\")]\nfn v() { x.unwrap(); }\n";
        let (sig, sc) = scopes_of(src);
        assert!(!sc.in_test[idx_of(&sig, "unwrap")]);
    }
}

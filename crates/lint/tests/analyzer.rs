//! Integration tests: `baldur-lint` over synthetic trees with seeded
//! violations, including a spawn of the real binary asserting nonzero exit
//! and `file:line` diagnostics.

use std::path::{Path, PathBuf};
use std::process::Command;

/// A throwaway repo-shaped tree under the target directory (no wall-clock
/// or RNG in the name — tests run serially against distinct names).
struct TempRepo {
    root: PathBuf,
}

impl TempRepo {
    fn new(name: &str) -> Self {
        let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
        if root.exists() {
            std::fs::remove_dir_all(&root).expect("clear previous fixture");
        }
        std::fs::create_dir_all(&root).expect("create fixture root");
        TempRepo { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        let parent = path.parent().expect("relative path has a parent");
        std::fs::create_dir_all(parent).expect("create fixture dirs");
        std::fs::write(&path, content).expect("write fixture file");
    }
}

#[test]
fn clean_tree_is_clean() {
    let repo = TempRepo::new("lint-clean");
    repo.write(
        "crates/sim/src/lib.rs",
        "pub fn double(x: u64) -> u64 { x * 2 }\n",
    );
    let outcome = baldur_lint::lint_repo(&repo.root).expect("lint runs");
    assert!(outcome.is_clean(), "{:?}", outcome.report.violations);
    assert_eq!(outcome.report.files_scanned, 1);
}

#[test]
fn seeded_violations_are_found_with_file_and_line() {
    let repo = TempRepo::new("lint-seeded");
    repo.write(
        "crates/sim/src/bad.rs",
        concat!(
            "pub fn f() {\n",
            "    let _t = std::time::Instant::now();\n", // line 2
            "    let _m: std::collections::HashMap<u32, u32> = Default::default();\n", // 3
            "    let _x: Option<u32> = None;\n",
            "    let _y = _x.unwrap();\n", // line 5
            "}\n",
        ),
    );
    let outcome = baldur_lint::lint_repo(&repo.root).expect("lint runs");
    let v = &outcome.report.violations;
    assert!(!outcome.is_clean());
    let find = |rule: &str| {
        v.iter()
            .find(|f| f.rule == rule)
            .unwrap_or_else(|| panic!("missing {rule} in {v:?}"))
    };
    let wall = find("wall-clock");
    assert_eq!(
        (wall.file.as_str(), wall.line),
        ("crates/sim/src/bad.rs", 2)
    );
    assert_eq!(find("unordered-collection").line, 3);
    assert_eq!(find("panic-site").line, 5);
}

#[test]
fn wall_clock_applies_repo_wide_but_other_wall_rules_do_not() {
    // The wall-clock rule is repo-wide: a non-wall crate reading
    // `Instant::now` is a violation (only crates/bench/src/perf.rs is
    // exempt)...
    let repo = TempRepo::new("lint-nonwall");
    repo.write(
        "crates/power/src/lib.rs",
        "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let outcome = baldur_lint::lint_repo(&repo.root).expect("lint runs");
    assert!(!outcome.is_clean());
    assert!(outcome
        .report
        .violations
        .iter()
        .all(|f| f.rule == "wall-clock"));

    // ...while the rest of the determinism family stays wall-scoped.
    let repo = TempRepo::new("lint-nonwall-hash");
    repo.write(
        "crates/power/src/lib.rs",
        "pub fn f() -> HashMap<u32, u32> { std::env::var(\"X\").ok(); HashMap::new() }\n",
    );
    let outcome = baldur_lint::lint_repo(&repo.root).expect("lint runs");
    assert!(outcome.is_clean(), "{:?}", outcome.report.violations);

    // The perf harness is the one sanctioned clock reader.
    let repo = TempRepo::new("lint-perf-exempt");
    repo.write(
        "crates/bench/src/perf.rs",
        "pub fn now_ns() -> u64 { let _ = std::time::Instant::now(); 0 }\n",
    );
    let outcome = baldur_lint::lint_repo(&repo.root).expect("lint runs");
    assert!(outcome.is_clean(), "{:?}", outcome.report.violations);
}

#[test]
fn test_code_and_strings_and_comments_are_exempt() {
    let repo = TempRepo::new("lint-exempt");
    repo.write(
        "crates/net/src/lib.rs",
        concat!(
            "//! Mentions Instant::now and HashMap in docs only.\n",
            "pub const HINT: &str = \"thread_rng() is forbidden\";\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() {\n",
            "        let x: Option<u32> = Some(1);\n",
            "        assert_eq!(x.unwrap(), 1);\n",
            "    }\n",
            "}\n",
        ),
    );
    let outcome = baldur_lint::lint_repo(&repo.root).expect("lint runs");
    assert!(outcome.is_clean(), "{:?}", outcome.report.violations);
}

#[test]
fn float_hazards_fire_in_every_crate() {
    let repo = TempRepo::new("lint-float");
    repo.write(
        "crates/cost/src/lib.rs",
        concat!(
            "pub fn worst(xs: &[f64]) -> f64 {\n",
            "    let mut s = xs.to_vec();\n",
            "    s.sort_by(|a, b| a.partial_cmp(b).unwrap());\n", // line 3
            "    if s[0] == 0.5 { return 1.0; }\n",               // line 4
            "    s[0]\n",
            "}\n",
        ),
    );
    let outcome = baldur_lint::lint_repo(&repo.root).expect("lint runs");
    let rules: Vec<(&str, usize)> = outcome
        .report
        .violations
        .iter()
        .map(|f| (f.rule.as_str(), f.line))
        .collect();
    assert!(rules.contains(&("float-cmp-panic", 3)), "{rules:?}");
    assert!(rules.contains(&("float-literal-eq", 4)), "{rules:?}");
    // The partial_cmp unwrap reports as the float hazard, not double-counted
    // as a generic panic site.
    assert!(!rules.iter().any(|(r, l)| *r == "panic-site" && *l == 3));
}

#[test]
fn allowlist_budget_shrinks_but_never_grows() {
    let repo = TempRepo::new("lint-allowlist");
    repo.write(
        "crates/topo/src/lib.rs",
        concat!(
            "pub fn f(a: Option<u32>, b: Option<u32>) -> u32 {\n",
            "    a.unwrap() + b.unwrap()\n",
            "}\n",
        ),
    );
    // Exact budget: clean.
    repo.write(
        "crates/lint/allowlist.txt",
        "panic-site crates/topo/src/lib.rs 2\n",
    );
    let outcome = baldur_lint::lint_repo(&repo.root).expect("lint runs");
    assert!(outcome.is_clean(), "{:?}", outcome.report.violations);
    assert_eq!(outcome.report.allowlisted.len(), 1);

    // Over-provisioned budget: stale entry, must shrink.
    repo.write(
        "crates/lint/allowlist.txt",
        "panic-site crates/topo/src/lib.rs 5\n",
    );
    let outcome = baldur_lint::lint_repo(&repo.root).expect("lint runs");
    assert!(
        outcome
            .report
            .violations
            .iter()
            .any(|f| f.message.contains("stale allowlist entry")),
        "{:?}",
        outcome.report.violations
    );

    // Under-provisioned budget: the findings surface as violations.
    repo.write(
        "crates/lint/allowlist.txt",
        "panic-site crates/topo/src/lib.rs 1\n",
    );
    let outcome = baldur_lint::lint_repo(&repo.root).expect("lint runs");
    assert!(!outcome.is_clean());
    assert!(
        outcome
            .report
            .violations
            .iter()
            .any(|f| f.message.contains("budget exceeded")),
        "{:?}",
        outcome.report.violations
    );

    // Entry for a file with no findings at all: stale.
    repo.write(
        "crates/lint/allowlist.txt",
        concat!(
            "panic-site crates/topo/src/lib.rs 2\n",
            "panic-site crates/topo/src/gone.rs 1\n",
        ),
    );
    let outcome = baldur_lint::lint_repo(&repo.root).expect("lint runs");
    assert!(
        outcome
            .report
            .violations
            .iter()
            .any(|f| f.file == "crates/topo/src/gone.rs"),
        "{:?}",
        outcome.report.violations
    );
}

#[test]
fn binary_exits_nonzero_on_seeded_violation_and_writes_report() {
    let repo = TempRepo::new("lint-binary");
    repo.write(
        "crates/sim/src/lib.rs",
        "pub fn bad() { let _ = std::time::SystemTime::now(); }\n",
    );
    let out = Command::new(env!("CARGO_BIN_EXE_baldur-lint"))
        .args(["--root", repo.root.to_str().expect("utf-8 path")])
        .output()
        .expect("spawn baldur-lint");
    assert!(!out.status.success(), "must exit nonzero on a dirty tree");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("crates/sim/src/lib.rs:1"),
        "diagnostic must carry file:line, got:\n{stderr}"
    );
    assert!(stderr.contains("wall-clock"), "{stderr}");
    let report = std::fs::read_to_string(repo.root.join(baldur_lint::REPORT_PATH))
        .expect("JSON report written even on failure");
    assert!(report.contains("\"wall-clock\""), "{report}");
}

#[test]
fn binary_exits_zero_on_clean_tree() {
    let repo = TempRepo::new("lint-binary-clean");
    repo.write("crates/sim/src/lib.rs", "pub fn ok() {}\n");
    let out = Command::new(env!("CARGO_BIN_EXE_baldur-lint"))
        .args(["--root", repo.root.to_str().expect("utf-8 path")])
        .output()
        .expect("spawn baldur-lint");
    assert!(out.status.success());
}

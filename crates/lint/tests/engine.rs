//! Token-engine tests over the adversarial fixture corpus.
//!
//! Each fixture under `tests/fixtures/` is linted through the real engine
//! with a repo-shaped relative path choosing the rule scope, and checked
//! against an exact expected-findings table. For the four new rule
//! families the tests also run a faithful replica of the retired
//! line-regex pass over the same fixture and assert it finds nothing —
//! the "demonstrably missed" half of the acceptance criteria. A final
//! property test re-concatenates lexed token spans over every fixture
//! AND every real source in the repository, proving the lexer is
//! lossless byte-for-byte.

use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// (rule, line) pairs of every finding, sorted.
fn found(rel: &str, source: &str) -> Vec<(String, usize)> {
    let mut v: Vec<(String, usize)> = baldur_lint::lint_source(rel, source)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect();
    v.sort();
    v
}

fn expect_findings(rel: &str, source: &str, mut want: Vec<(&str, usize)>) {
    want.sort_unstable();
    let want: Vec<(String, usize)> = want.into_iter().map(|(r, l)| (r.to_string(), l)).collect();
    assert_eq!(found(rel, source), want, "fixture {rel} drifted");
}

/// The retired engine's panic detection, faithfully replicated: per-line
/// substring counts over comment-stripped text (the old scrubber blanked
/// comments and strings before matching).
fn legacy_panic_hits(source: &str) -> usize {
    source
        .lines()
        .map(|l| l.split("//").next().unwrap_or(""))
        .map(|code| {
            code.matches(".unwrap()").count() + code.matches(".expect(").count()
                - code.matches(".expect_err(").count()
        })
        .sum()
}

#[test]
fn adversarial_sources_produce_zero_findings() {
    let src = fixture("adversarial_clean.rs");
    let findings = baldur_lint::lint_source("crates/sim/src/adversarial.rs", &src);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn determinism_family_catches_wall_and_env_leaks() {
    let src = fixture("determinism.rs");
    expect_findings(
        "crates/sim/src/determinism.rs",
        &src,
        vec![
            ("unordered-collection", 8),
            ("wall-clock", 11),
            ("wall-clock", 12),
            ("ambient-random", 17),
            ("env-read", 24),
            ("unordered-collection", 28),
            ("unordered-collection", 28),
            ("unordered-collection", 29),
        ],
    );
    // The regex-era miss: the old engine had no env rule at all, so the
    // same source linted clean on that axis. (Its other wall rules did
    // fire; env-read is the family's new coverage.)
    assert!(
        !src.lines().any(|l| l.contains("env-read-regex")),
        "fixture self-check"
    );
}

#[test]
fn unit_family_catches_bare_quantities_and_mixed_suffixes() {
    let src = fixture("units.rs");
    expect_findings(
        "crates/phy/src/units.rs",
        &src,
        vec![
            ("unit-f64-param", 10),
            ("mixed-unit", 26),
            ("mixed-unit", 31),
        ],
    );
    // Outside the unit-scoped crates the same source is clean: the rules
    // guard physical-model signatures, not arbitrary arithmetic.
    assert!(found("crates/bench/src/units.rs", &src).is_empty());
}

#[test]
fn narrowing_family_catches_kernel_truncations() {
    let src = fixture("narrowing.rs");
    expect_findings(
        "crates/sim/src/narrowing.rs",
        &src,
        vec![
            ("narrowing-cast", 12),
            ("narrowing-cast", 17),
            ("narrowing-cast", 22),
        ],
    );
    // The rule is kernel-scoped: the identical casts in a non-sim crate
    // are out of scope (they do not feed event time).
    assert!(found("crates/bench/src/narrowing.rs", &src).is_empty());
}

#[test]
fn panic_v2_family_catches_what_the_regex_provably_missed() {
    let src = fixture("panic_v2.rs");
    expect_findings(
        "crates/net/src/runner.rs",
        &src,
        vec![
            ("slice-index", 13),
            ("panic-indirect", 19),
            ("panic-indirect", 24),
            ("job-path-panic", 31),
        ],
    );
    // The old engine's exact detection finds ZERO of these four panic
    // sites: no line carries a `.unwrap()`/`.expect(` substring.
    assert_eq!(
        legacy_panic_hits(&src),
        0,
        "fixture must stay invisible to the legacy substring scan"
    );
}

#[test]
fn slice_index_scope_is_job_path_and_fault_files_only() {
    let src = "pub fn pick(xs: &[u64], i: usize) -> u64 { xs[i] }\n";
    // In ordinary library code indexing is routine Rust; only the
    // supervised job path and fault handlers must be mechanically
    // panic-free.
    assert!(found("crates/net/src/routing.rs", src).is_empty());
    assert_eq!(
        found("crates/net/src/faults.rs", src),
        vec![("slice-index".to_string(), 1)]
    );
    // The runtime invariant oracle sits on the fault path too: a checker
    // that panics while reporting a violation defeats its purpose.
    assert_eq!(
        found("crates/net/src/oracle.rs", src),
        vec![("slice-index".to_string(), 1)]
    );
    assert_eq!(
        found("crates/sim/src/par.rs", src),
        vec![("slice-index".to_string(), 1)]
    );
}

/// Every `.rs` file under the repository's `crates/` tree, plus the
/// fixture corpus itself.
fn all_sources() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| panic!("lint crate must live at <repo>/crates/lint"));
    let mut out = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("read {}: {e}", dir.display()));
        for entry in entries {
            let path = entry
                .unwrap_or_else(|e| panic!("walk {}: {e}", dir.display()))
                .path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    assert!(out.len() > 50, "suspiciously few sources: {}", out.len());
    out
}

#[test]
fn lexing_then_reconcatenating_spans_reproduces_every_input() {
    for path in all_sources() {
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let toks = baldur_lint::lexer::lex(&src);
        let rebuilt: String = toks.iter().map(|t| t.text(&src)).collect();
        assert!(
            rebuilt == src,
            "lexer dropped or duplicated bytes in {}",
            path.display()
        );
        // Spans must also tile the file: contiguous, in order, total.
        let mut cursor = 0;
        for t in &toks {
            assert_eq!(t.start, cursor, "span gap in {}", path.display());
            assert!(t.end > t.start, "empty token in {}", path.display());
            cursor = t.end;
        }
        assert_eq!(cursor, src.len(), "trailing gap in {}", path.display());
    }
}

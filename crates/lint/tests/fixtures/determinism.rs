//! Determinism-family fixture (linted as a `crates/sim` source).
//!
//! The `env-read` sites are the family's regex-era miss: the old engine
//! had NO rule for environment reads at all, so a walled crate could
//! silently fork its behaviour on a shell variable. The remaining sites
//! reproduce the legacy wall rules through the token engine.

use std::collections::HashMap; // finding: unordered-collection (line 8)

pub fn clock() -> u64 {
    let _t = std::time::Instant::now(); // finding: wall-clock (line 11)
    let _s = std::time::SystemTime::now(); // finding: wall-clock (line 12)
    0
}

pub fn entropy() -> u64 {
    let _r = thread_rng(); // finding: ambient-random (line 17)
    0
}

pub fn shell_fork() -> Option<String> {
    // The old regex engine had no env rule: this compiled, linted clean,
    // and made "deterministic" sweeps depend on the invoking shell.
    std::env::var("BALDUR_SECRET_KNOB").ok() // finding: env-read (line 24)
}

pub fn tables() {
    let _m: HashMap<u32, u32> = HashMap::new(); // findings: unordered-collection x2 (line 28)
    let _s = std::collections::HashSet::<u32>::new(); // finding: unordered-collection (line 29)
}

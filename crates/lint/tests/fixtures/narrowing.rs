//! Narrowing-cast fixture (linted as a `crates/sim` source).
//!
//! Another rule with no regex-era counterpart: the old engine could not
//! tell `x as u32` on an opaque byte from `event_time as u32` on a
//! picosecond clock. At the paper's 1K-endpoint scale these casts are
//! latent (2^32 ps = 4.3 ms of simulated time is never exceeded); at the
//! ROADMAP's 1M-endpoint scale they go live. The rule keys on the
//! identifier vocabulary of the cast-ee expression.

/// Casting a time value down to u32 truncates after 4.3 ms.
pub fn bucket(event_time: u64) -> u32 {
    event_time as u32 // finding: narrowing-cast (line 12)
}

/// Event counts overflow u32 after 4 billion events.
pub fn as_index(event_count: u64) -> usize {
    event_count as usize // finding: narrowing-cast (line 17)
}

/// A tick index cast into i32 can go negative past 2^31.
pub fn signed_tick(tick: u64) -> i32 {
    tick as i32 // finding: narrowing-cast (line 22)
}

/// An opaque byte-ish value carries no kernel vocabulary: clean.
pub fn low_byte(word: u64) -> u32 {
    word as u32
}

/// Widening casts never truncate: clean in any vocabulary.
pub fn widen(event_time: u32) -> u64 {
    u64::from(event_time)
}

/// Mask-before-cast bounds the value below the target width; binding the
/// masked value first keeps the final cast outside the flagged window
/// (this is the sanctioned fix shape, used by `sim::calendar`).
pub fn wheel_slot(at_ps: u64, buckets: u64) -> usize {
    let wheel = at_ps & (buckets - 1);
    wheel as usize
}

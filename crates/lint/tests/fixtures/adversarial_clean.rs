//! Adversarial-but-clean fixture: every construct here defeated (or
//! nearly defeated) the old line-regex engine's scrubber, and none of it
//! is a real violation. The token engine must report ZERO findings.

/// Raw string carrying panic-looking text: `unwrap(` inside an `r#""#`
/// literal is data, not code. The old scrubber special-cased this with a
/// hand-rolled hash counter; the lexer gets it for free.
pub const HELP: &str = r#"call x.unwrap() and y.expect("msg") at your peril"#;

/// Raw string whose hashes nest around a quote-hash sequence.
pub const TRICKY: &str = r##"ends with "# but not here"##;

/* A nested /* block comment */ mentioning Instant::now() and HashMap,
   still inside the outer comment. */

/// Char literal next to a lifetime: `'a` must lex as a lifetime, `'x'`
/// as a char, and neither may desynchronise the quote tracking that
/// follows (a desync would make the `unwrap` below look like a string).
pub fn choose<'a>(s: &'a str, c: char) -> &'a str {
    if c == 'x' {
        s
    } else {
        "fallback"
    }
}

/// Escaped char literals with multi-byte escapes.
pub const NL: char = '\n';
pub const TAB: char = '\u{9}';

/// Tuple indexing: `t.0` is an integer field access, not a float literal
/// `0.` — a float-hungry lexer would mis-tokenize and shift every
/// span after it.
pub fn first(t: (u64, u64)) -> u64 {
    t.0
}

/// Braces inside a string: the old character-walking test mask could be
/// desynchronised by these; token-based brace matching cannot.
pub const BRACES: &str = "}}}{{{";

/// `expect_err` is not `expect`: exact-identifier matching must not
/// count it against the panic budget (the regex needed a subtraction
/// hack for this).
pub fn invert(r: Result<(), u64>) -> u64 {
    r.expect_err("must be the error arm")
}

#[cfg(test)]
mod tests {
    /// Inside a test region every rule is off: panics, clocks, and
    /// unordered maps are legitimate test machinery.
    #[test]
    fn violations_are_fine_in_tests() {
        let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        assert!(m.get(&0).is_none());
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}

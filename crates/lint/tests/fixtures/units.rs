//! Unit-safety fixture (linted as a `crates/phy` source).
//!
//! Both rules in this family are regex-era misses: the old engine had no
//! notion of signatures or expressions, so a dimensionally ambiguous
//! `f64` parameter or an ns-plus-ps addition linted clean. The token
//! engine parses parameter lists and expression neighbourhoods.

/// A bare `f64` named like a physical quantity: the caller cannot tell
/// ns from us at the call site.
pub fn set_latency(latency: f64) -> f64 {
    latency // finding: unit-f64-param (line 10, param `latency`)
}

/// Unit-suffixed parameters are self-describing and clean.
pub fn set_latency_ns(latency_ns: f64) -> f64 {
    latency_ns
}

/// A newtype-style integer carries its unit in the type, also clean.
pub fn set_guard(guard: u64) -> u64 {
    guard
}

/// Mixing `_ns` and `_ps` additively is a latent off-by-1000.
pub fn window(guard_ns: u64, settle_ps: u64) -> u64 {
    guard_ns + settle_ps // finding: mixed-unit (line 26)
}

/// Comparing mismatched units is the same bug in disguise.
pub fn overdue(timeout_us: u64, budget_ms: u64) -> bool {
    timeout_us > budget_ms // finding: mixed-unit (line 31)
}

/// Same-unit arithmetic is clean.
pub fn total(first_ns: u64, second_ns: u64) -> u64 {
    first_ns + second_ns
}

/// Multiplication/division are dimensional arithmetic, exempt by design:
/// `pj * bits` legitimately changes the unit.
pub fn energy(pj: u64, bits: u64) -> u64 {
    pj * bits
}

//! Panic-surface-v2 fixture (linted as the job-path source
//! `crates/net/src/runner.rs`).
//!
//! Every site here is invisible to the old regex engine, which matched
//! the literal substrings `.unwrap()` and `.expect(` per line: no line
//! below contains either substring, yet all four functions can panic.
//! The engine test proves the miss by running the legacy substring scan
//! over this file and asserting zero hits.

/// Slice indexing panics on out-of-range exactly like `.unwrap()`. The
/// regex engine had no rule for `xs[i]` at all.
pub fn pick(xs: &[u64], i: usize) -> u64 {
    xs[i] // finding: slice-index (line 13)
}

/// A panicking closure behind `unwrap_or_else`: same abort, different
/// spelling. The substring `.unwrap()` never appears.
pub fn must(x: Option<u64>) -> u64 {
    x.unwrap_or_else(|| panic!("missing")) // finding: panic-indirect (line 19)
}

/// `map_or_else` reaching `unreachable!` through the error arm.
pub fn or_bust(x: Result<u64, u64>) -> u64 {
    x.map_or_else(|_| unreachable!("no error arm"), |v| v) // finding: panic-indirect (line 24)
}

/// `.expect` split across lines: the method name and its argument list
/// land on different lines, so the per-line `.expect(` substring scan
/// never fired. Tokens have no line boundaries.
pub fn spaced(x: Option<u64>) -> u64 {
    x.expect
        // finding: job-path-panic (line 31, reported at `expect`)
        ("present")
}

/// Non-panicking fallbacks stay clean: the closure matters, not the
/// adaptor name.
pub fn safe(x: Option<u64>) -> u64 {
    x.unwrap_or_else(|| 0)
}

/// `.get()` is the sanctioned indexing shape.
pub fn pick_safe(xs: &[u64], i: usize) -> u64 {
    xs.get(i).copied().unwrap_or_default()
}

//! Bit-level reproducibility: a run is a pure function of its config.

use baldur::prelude::*;

fn run_twice(network: NetworkKind, workload: Workload) {
    let name = network.name();
    let mk = || {
        let mut cfg = RunConfig::new(64, network.clone(), workload);
        cfg.seed = 1234;
        baldur::run(&cfg)
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.avg_ns.to_bits(), b.avg_ns.to_bits(), "{name}");
    assert_eq!(a.p99_ns.to_bits(), b.p99_ns.to_bits(), "{name}");
    assert_eq!(a.delivered, b.delivered, "{name}");
    assert_eq!(a.drop_attempts, b.drop_attempts, "{name}");
    assert_eq!(a.sim_end_ns.to_bits(), b.sim_end_ns.to_bits(), "{name}");
}

#[test]
fn every_network_is_deterministic() {
    let wl = Workload::Synthetic {
        pattern: Pattern::Bisection,
        load: 0.6,
        packets_per_node: 40,
    };
    for (_, network) in NetworkKind::paper_lineup(64) {
        run_twice(network, wl);
    }
}

#[test]
fn seeds_actually_matter() {
    let wl = Workload::Synthetic {
        pattern: Pattern::RandomPermutation,
        load: 0.6,
        packets_per_node: 40,
    };
    let mut cfg = RunConfig::new(
        64,
        NetworkKind::Baldur(BaldurParams::paper_for(64)),
        wl,
    );
    cfg.seed = 1;
    let a = baldur::run(&cfg);
    cfg.seed = 2;
    let b = baldur::run(&cfg);
    assert_ne!(a.avg_ns.to_bits(), b.avg_ns.to_bits());
}

#[test]
fn trace_workloads_are_deterministic() {
    let wl = Workload::Hpc {
        app: HpcApp::Amg,
        params: TraceParams::default_scale(),
    };
    run_twice(NetworkKind::Baldur(BaldurParams::paper_for(64)), wl);
}

//! Bit-level reproducibility: a run is a pure function of its config.

use baldur::prelude::*;

fn run_twice(network: NetworkKind, workload: Workload) {
    let name = network.name();
    let mk = || {
        let mut cfg = RunConfig::new(64, network.clone(), workload);
        cfg.seed = 1234;
        baldur::run(&cfg)
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.avg_ns.to_bits(), b.avg_ns.to_bits(), "{name}");
    assert_eq!(a.p99_ns.to_bits(), b.p99_ns.to_bits(), "{name}");
    assert_eq!(a.delivered, b.delivered, "{name}");
    assert_eq!(a.drop_attempts, b.drop_attempts, "{name}");
    assert_eq!(a.sim_end_ns.to_bits(), b.sim_end_ns.to_bits(), "{name}");
}

#[test]
fn every_network_is_deterministic() {
    let wl = Workload::Synthetic {
        pattern: Pattern::Bisection,
        load: 0.6,
        packets_per_node: 40,
    };
    for (_, network) in NetworkKind::paper_lineup(64) {
        run_twice(network, wl);
    }
}

#[test]
fn seeds_actually_matter() {
    let wl = Workload::Synthetic {
        pattern: Pattern::RandomPermutation,
        load: 0.6,
        packets_per_node: 40,
    };
    let mut cfg = RunConfig::new(64, NetworkKind::Baldur(BaldurParams::paper_for(64)), wl);
    cfg.seed = 1;
    let a = baldur::run(&cfg);
    cfg.seed = 2;
    let b = baldur::run(&cfg);
    assert_ne!(a.avg_ns.to_bits(), b.avg_ns.to_bits());
}

#[test]
fn trace_workloads_are_deterministic() {
    let wl = Workload::Hpc {
        app: HpcApp::Amg,
        params: TraceParams::default_scale(),
    };
    run_twice(NetworkKind::Baldur(BaldurParams::paper_for(64)), wl);
}

/// Two fresh runs of the same seed must agree on the *entire serialized
/// metrics struct* — every field, via the JSON rendering — not just the
/// headline numbers.
#[test]
fn full_metrics_json_is_bit_identical_across_runs() {
    let mk = || {
        let mut cfg = RunConfig::new(
            64,
            NetworkKind::Baldur(BaldurParams::paper_for(64)),
            Workload::Synthetic {
                pattern: Pattern::RandomPermutation,
                load: 0.6,
                packets_per_node: 40,
            },
        );
        cfg.seed = 4242;
        let report = baldur::run(&cfg);
        serde_json::to_string_pretty(&report).expect("serialize report")
    };
    let a = mk();
    let b = mk();
    assert_eq!(a, b, "serialized LatencyReport must be byte-identical");
}

/// The figure-6 CSV — the artifact the paper's plots are drawn from — must
/// be byte-identical across two same-seed regenerations.
#[test]
fn figure_csv_bytes_are_identical_across_runs() {
    let mk = || {
        let cfg = baldur::experiments::EvalConfig::tiny();
        let rows = baldur::experiments::figure6(&cfg, &[0.3]);
        baldur::csv::fig6(&rows).into_bytes()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a, b, "fig6 CSV bytes must be identical for a fixed seed");
}

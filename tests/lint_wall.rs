//! Tier-1 gate: the repo's own static-analysis wall must hold.
//!
//! `baldur-lint` (crates/lint) checks the determinism wall (no ambient
//! randomness, wall-clock/env reads, or unordered maps in result-producing
//! crates), the shrink-only panic budget (direct, indirect, and indexing
//! surfaces), unit-safety and narrowing-cast rules, and float hazards.
//! These tests run the analyzer in-process over the working tree, so
//! `cargo test` fails the moment a violation lands; the JSON report is
//! also pinned to a golden snapshot (re-bless with `./ci.sh --bless`) and
//! proven byte-identical across thread counts.

use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn repository_passes_baldur_lint() {
    let outcome = baldur_lint::lint_repo(repo_root()).expect("lint walks the tree");
    assert!(
        outcome.report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        outcome.report.files_scanned
    );
    assert!(
        outcome.is_clean(),
        "baldur-lint violations:\n{}",
        outcome
            .report
            .violations
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn lint_crate_passes_its_own_rules_with_zero_allowlist() {
    let outcome = baldur_lint::lint_self(repo_root()).expect("self-check walks the tree");
    assert!(
        outcome.is_clean(),
        "baldur-lint self-check violations:\n{}",
        outcome
            .report
            .violations
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        outcome.report.allowlisted.is_empty(),
        "self-check must consume zero allowlist budget: {:?}",
        outcome.report.allowlisted
    );
}

/// Renders the repo's lint report exactly as the binary writes it.
fn rendered_report(threads: usize) -> String {
    let outcome =
        baldur_lint::lint_repo_with_threads(repo_root(), threads).expect("lint walks the tree");
    let json = serde_json::to_string_pretty(&outcome.report).expect("report serializes");
    json + "\n"
}

#[test]
fn lint_json_snapshot_is_fresh() {
    let golden_path = repo_root().join("results/golden/lint.json");
    let rendered = rendered_report(0);
    if std::env::var_os("BALDUR_BLESS").is_some() {
        std::fs::create_dir_all(golden_path.parent().expect("golden dir has a parent"))
            .expect("create results/golden/");
        std::fs::write(&golden_path, &rendered).expect("bless lint.json");
        eprintln!("blessed {}", golden_path.display());
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "read golden snapshot {}: {e}\n\
             create it with `./ci.sh --bless`",
            golden_path.display()
        )
    });
    assert!(
        rendered == golden,
        "results/golden/lint.json drifted from the live lint report \
         (rules, counts, or allowlist changed); if intentional, re-bless \
         with `./ci.sh --bless` and review the diff"
    );
}

#[test]
fn lint_report_is_byte_identical_across_thread_counts() {
    let serial = rendered_report(1);
    let parallel = rendered_report(8);
    assert!(
        serial == parallel,
        "lint report differs between BALDUR_THREADS=1 and 8 — \
         the par_map fan-out leaked ordering into the findings"
    );
}

//! Tier-1 gate: the repo's own static-analysis wall must hold.
//!
//! `baldur-lint` (crates/lint) checks the determinism wall (no ambient
//! randomness, wall-clock reads, or unordered maps in result-producing
//! crates), the shrink-only panic budget, and float hazards. This test
//! runs the analyzer in-process over the working tree, so `cargo test`
//! fails the moment a violation lands.

use std::path::Path;

#[test]
fn repository_passes_baldur_lint() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let outcome = baldur_lint::lint_repo(root).expect("lint walks the tree");
    assert!(
        outcome.report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        outcome.report.files_scanned
    );
    assert!(
        outcome.is_clean(),
        "baldur-lint violations:\n{}",
        outcome
            .report
            .violations
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

//! Perf-subsystem suite: the `BENCH_8.json` artifact stays valid and
//! honest (schema, exact counters, recorded speedups), the
//! `results/golden/perf_ops.json` CI gate stays fresh, and the report
//! types round-trip through the vendored serde.
//!
//! Wall-clock numbers are never asserted here — they are advisory by
//! design. What is law: the exact work counters, which must reproduce
//! bit-identically on any machine, any thread count, any opt level.

use std::path::Path;

use baldur::experiments::{
    ops_report, BenchRecord, BenchReport, Counters, DeltaRecord, OpsReport, WallStats, PERF_SCHEMA,
};

fn repo_path(rel: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// The benchmark lineup `BENCH_8.json` and the ops golden must carry,
/// in table order.
const EXPECTED_BENCHES: &[&str] = &[
    "sched_heap_push_pop",
    "sched_calendar_push_pop",
    "codec_encode",
    "codec_decode",
    "tl_gate_loop",
    "baldur_arb_retx",
    "fig6_throughput",
];

fn sample_report() -> BenchReport {
    let wall = WallStats {
        median_ns: 1_000.0,
        min_ns: 900.0,
        mad_ns: 10.0,
        samples: 10,
        rejected: 1,
    };
    let counters = Counters {
        ops: 42,
        packets: 7,
        bytes: 1024,
    };
    let optimized = BenchRecord {
        name: "codec_encode".to_string(),
        counters,
        wall,
        ops_per_sec: 4.2e7,
    };
    let baseline = BenchRecord {
        name: "codec_encode_baseline".to_string(),
        counters,
        wall: WallStats {
            median_ns: 2_500.0,
            ..wall
        },
        ops_per_sec: 1.68e7,
    };
    BenchReport {
        schema: PERF_SCHEMA.to_string(),
        git_rev: "deadbeef".to_string(),
        threads: 8,
        samples: 10,
        benches: vec![optimized.clone()],
        deltas: vec![DeltaRecord {
            name: "codec_encode".to_string(),
            baseline,
            optimized,
            speedup_median: 2.5,
        }],
        peak_rss_bytes: 48 * 1024 * 1024,
    }
}

/// Pre-probe artifacts (no `peak_rss_bytes` key) must keep parsing: the
/// committed `BENCH_8.json` predates the memory probe.
#[test]
fn bench_report_parses_without_peak_rss_field() {
    use serde::{Deserialize, Serialize, Value};
    let report = sample_report();
    let mut value = report.to_value();
    let Value::Object(entries) = &mut value else {
        panic!("report must lower to an object");
    };
    let before = entries.len();
    entries.retain(|(key, _)| key != "peak_rss_bytes");
    assert_eq!(entries.len(), before - 1, "field present before stripping");
    let back = BenchReport::from_value(&value).expect("parse without peak_rss_bytes");
    assert_eq!(back.peak_rss_bytes, 0);
    assert_eq!(back.benches, report.benches);
}

#[test]
fn bench_report_round_trips_through_serde() {
    let report = sample_report();
    let text = serde_json::to_string_pretty(&report).expect("serialize BenchReport");
    let back: BenchReport = serde_json::from_str(&text).expect("deserialize BenchReport");
    assert_eq!(back, report);
}

#[test]
fn ops_report_round_trips_through_serde() {
    let report = ops_report();
    let text = serde_json::to_string_pretty(&report).expect("serialize OpsReport");
    let back: OpsReport = serde_json::from_str(&text).expect("deserialize OpsReport");
    assert_eq!(back, report);
}

#[test]
fn ops_counters_are_identical_across_passes() {
    // Two in-process passes — any divergence means a benchmark workload
    // leaked nondeterminism (wall clock, thread count, global state).
    assert_eq!(ops_report(), ops_report());
}

/// The committed `BENCH_8.json` perf-trajectory artifact: valid schema,
/// the full benchmark lineup, counters that reproduce exactly on this
/// machine, and the recorded >= 2x optimization wins.
#[test]
fn bench_8_json_is_valid_and_counters_reproduce() {
    let path = repo_path("BENCH_8.json");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e}\nregenerate it with `cargo run --release --bin perf`",
            path.display()
        )
    });
    let report: BenchReport = serde_json::from_str(&text).expect("BENCH_8.json parses");
    assert_eq!(report.schema, PERF_SCHEMA);
    assert!(report.samples >= 3, "fewer than 3 samples per bench");
    assert!(report.threads >= 1);
    assert!(!report.git_rev.is_empty());

    let names: Vec<&str> = report.benches.iter().map(|b| b.name.as_str()).collect();
    assert_eq!(names, EXPECTED_BENCHES, "benchmark lineup drifted");

    // The committed counters must reproduce bit-exactly here and now.
    let fresh = ops_report();
    for (committed, live) in report.benches.iter().zip(&fresh.benches) {
        assert_eq!(committed.name, live.name);
        assert_eq!(
            committed.counters, live.counters,
            "bench `{}`: committed counters no longer reproduce — \
             regenerate BENCH_8.json with `cargo run --release --bin perf`",
            committed.name
        );
    }

    // Wall sanity (not a perf gate): stats are internally consistent.
    for b in &report.benches {
        assert!(b.wall.min_ns <= b.wall.median_ns, "bench `{}`", b.name);
        assert!(b.wall.rejected < b.wall.samples, "bench `{}`", b.name);
    }

    // The perf-trajectory acceptance: at least two hot paths recorded a
    // >= 2x median improvement over their retained baselines, and every
    // delta compared equal work.
    for d in &report.deltas {
        assert_eq!(
            d.baseline.counters, d.optimized.counters,
            "delta `{}` compared different work",
            d.name
        );
        assert_eq!(d.baseline.name, format!("{}_baseline", d.name));
    }
    let wins = report
        .deltas
        .iter()
        .filter(|d| d.speedup_median >= 2.0)
        .count();
    assert!(
        wins >= 2,
        "BENCH_8.json records {wins} hot paths at >= 2x (need 2): {:?}",
        report
            .deltas
            .iter()
            .map(|d| (d.name.as_str(), d.speedup_median))
            .collect::<Vec<_>>()
    );
}

/// `results/golden/perf_ops.json` — the exact-counter snapshot the
/// `perf --smoke` CI step gates on — tracks the live workloads.
/// Re-bless with `./ci.sh --bless`.
#[test]
fn perf_ops_golden_is_fresh() {
    let golden_path = repo_path("results/golden/perf_ops.json");
    let mut rendered = serde_json::to_string_pretty(&ops_report()).expect("serialize OpsReport");
    rendered.push('\n');
    if std::env::var_os("BALDUR_BLESS").is_some() {
        std::fs::create_dir_all(golden_path.parent().expect("golden dir has a parent"))
            .expect("create results/golden/");
        std::fs::write(&golden_path, &rendered).expect("bless perf_ops.json");
        eprintln!("blessed {}", golden_path.display());
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "read golden snapshot {}: {e}\n\
             create it with `./ci.sh --bless`",
            golden_path.display()
        )
    });
    assert!(
        rendered == golden,
        "results/golden/perf_ops.json drifted from the live work counters; \
         if the change is intentional (a workload or hot path changed), \
         re-bless with `./ci.sh --bless` and review the diff"
    );
}

//! Golden-file suite: renders a fixed subset of the figure CSVs at the
//! tiny config and compares them byte-for-byte against the snapshots in
//! `results/golden/`.
//!
//! These snapshots pin the *rendered output*, end to end: simulation
//! determinism, report field values, float formatting, and CSV layout all
//! have to hold for the bytes to match. A legitimate change to any of
//! those layers regenerates the snapshots with
//!
//! ```sh
//! ./ci.sh --bless            # or: BALDUR_BLESS=1 cargo test -q --test golden_suite
//! ```
//!
//! and the new files are reviewed like any other diff.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use baldur::experiments::{self, EvalConfig};

/// Repo-relative directory holding the snapshots.
const GOLDEN_DIR: &str = "results/golden";

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join(GOLDEN_DIR)
        .join(name)
}

/// First line where `got` and `want` differ, for a readable failure.
fn first_diff(got: &str, want: &str) -> String {
    let mut out = String::new();
    for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        if g != w {
            let _ = write!(out, "line {}:\n  got:    {g}\n  golden: {w}", i + 1);
            return out;
        }
    }
    let (gl, wl) = (got.lines().count(), want.lines().count());
    let _ = write!(out, "line counts differ: got {gl}, golden {wl}");
    out
}

/// Compares `rendered` against the snapshot `name`, or rewrites the
/// snapshot when `BALDUR_BLESS` is set.
fn check(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("BALDUR_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create results/golden/");
        std::fs::write(&path, rendered).unwrap_or_else(|e| panic!("bless {name}: {e}"));
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read golden snapshot {}: {e}\n\
             create it with `./ci.sh --bless` (or BALDUR_BLESS=1 cargo test -q --test golden_suite)",
            path.display()
        )
    });
    assert!(
        rendered == golden,
        "{name} drifted from its golden snapshot:\n{}\n\
         if the change is intentional, re-bless with `./ci.sh --bless` and review the diff",
        first_diff(rendered, &golden)
    );
}

fn tiny() -> EvalConfig {
    EvalConfig::tiny()
}

#[test]
fn golden_fig6_csv() {
    let rows = experiments::figure6(&tiny(), &[0.3, 0.7]);
    check("fig6.csv", &baldur::csv::fig6(&rows));
}

#[test]
fn golden_fig7_csv() {
    let rows = experiments::figure7(&tiny());
    check("fig7.csv", &baldur::csv::fig7(&rows));
}

#[test]
fn golden_faults_csv() {
    let rows = experiments::degradation(&tiny(), &[0.0, 0.05]);
    check("faults.csv", &baldur::csv::faults(&rows));
}

#[test]
fn golden_chaos_csv() {
    // Two seeded fail/repair schedules per network: pins the chaos
    // schedule generator, the oracle summary, and the recovery metrics.
    let rows = experiments::chaos(&tiny(), 2, 3);
    check("chaos.csv", &baldur::csv::chaos(&rows));
}

#[test]
fn golden_overload_csv() {
    // Storms at 0.5x/1x/4x with the overload controls on: pins the
    // admission/pacing/deadline dynamics, the per-flow fairness
    // distribution, and the oracle summary.
    let rows = experiments::overload(&tiny(), &[0.5, 1.0, 4.0]).expect("default storm lineup");
    check("overload.csv", &baldur::csv::overload(&rows));
}

#[test]
fn golden_table5_csv() {
    let rows = experiments::table_v(&tiny());
    check("table5.csv", &baldur::csv::table5(&rows));
}

#[test]
fn golden_fig8_csv() {
    // Analytic (no simulation): pins the power model and CSV rendering.
    let rows = experiments::figure8();
    check("fig8.csv", &baldur::csv::fig8(&rows));
}

#[test]
fn golden_fig10_csv() {
    // Analytic: pins the cost model and CSV rendering.
    let rows = experiments::figure10();
    check("fig10.csv", &baldur::csv::fig10(&rows));
}

//! The paper's headline quantitative claims, asserted end to end at
//! reduced scale (EXPERIMENTS.md records the full-scale numbers).

use baldur::experiments::{self, EvalConfig};
use baldur::power::NetworkPower;

#[test]
fn table_v_drop_rates_fall_three_orders_with_multiplicity() {
    let rows = experiments::table_v(&EvalConfig::tiny());
    assert!(rows[0].measured_drop_pct > 5.0, "{rows:?}");
    assert!(rows[4].measured_drop_pct < 0.3, "{rows:?}");
    // Gate counts and latencies are the paper's exact Table V values.
    assert_eq!(
        rows.iter().map(|r| r.gates).collect::<Vec<_>>(),
        vec![64, 300, 642, 1_112, 1_710]
    );
}

#[test]
fn figure8_improvement_bands() {
    let sweep = experiments::figure8();
    let at_1k = &sweep[0];
    let at_1m = &sweep[3];
    // Paper abstract: 3.2x-26.4x at 1K; 14.6x-31.0x at 1M (we allow our
    // calibrated models a modest band around those).
    let imp = |p: &baldur::power::ScalePoint, n| p.improvement(n);
    assert!(imp(at_1k, NetworkPower::Dragonfly) > 2.5);
    assert!(imp(at_1k, NetworkPower::ElectricalMultiButterfly) > 20.0);
    assert!(imp(at_1m, NetworkPower::Dragonfly) > 11.0);
    assert!(imp(at_1m, NetworkPower::ElectricalMultiButterfly) > 24.0);
}

#[test]
fn figure10_cost_anchor() {
    let rows = experiments::figure10();
    let at_1k = rows[0].breakdown.total();
    assert!((at_1k / 523.0 - 1.0).abs() < 0.15, "{at_1k}");
    assert_eq!(rows[0].breakdown.dominant(), "interposers");
}

#[test]
fn packaging_cabinet_claims() {
    let p1k = baldur::cost::packaging_for(1_024);
    assert_eq!(p1k.cabinets(), 1);
    let p1m = baldur::cost::packaging_for(1 << 20);
    assert!((700..=820).contains(&p1m.cabinets()), "{}", p1m.cabinets());
    assert!(p1m.cabinets_fiber_limited > p1m.cabinets_power_limited);
}

#[test]
fn awgr_power_and_latency_claims() {
    let c = experiments::awgr_comparison();
    assert!((c.baldur_w - 0.7).abs() < 0.1);
    assert!((c.awgr_w - 4.2).abs() < 0.15);
    assert!(c.awgr_latency_ns / c.baldur_latency_ns > 50.0);
}

#[test]
fn reliability_error_probability_is_1e9_class() {
    let r = experiments::reliability(200_000, 42).expect("no faults injected here");
    assert!(r.analytic_error_probability < 1e-8);
    assert!(r.analytic_error_probability > 1e-10);
    assert!((r.margin_sigmas - 5.66).abs() < 0.02);
}

#[test]
fn droptool_multiplicity_schedule() {
    let (_, required) = experiments::droptool_study(&[1_024], 9);
    assert_eq!(required, vec![(1_024, 4)], "paper: m=4 at 1K nodes");
}

#[test]
fn encoding_overhead_is_sub_half_percent() {
    let o = baldur::phy::overhead::length_code_overhead(8, 512);
    assert!(o.fraction < 0.005 && o.fraction > 0.001);
}

#[test]
fn switch_gate_level_and_network_level_latencies_agree() {
    // Table V says the m=1 switch takes 0.14 ns; the gate-level fabric
    // path (mask AND + 132 ps waveguide + output AND + combiner) must
    // land on the same number.
    let p = baldur::tl::switch::SwitchParams::paper();
    let g = baldur::tl::TlGate::PAPER.delay_fs();
    let fs = baldur::tl::switch::fabric_latency(&p, g);
    let ns = fs as f64 / 1e6;
    assert!((ns - 0.14).abs() < 0.01, "{ns}");
}

#[test]
fn multistage_isomorphism_and_expansion() {
    // Paper Sec. IV: "we expect Baldur to achieve similar results with
    // other multi-stage topologies (e.g., Benes, Omega)" — true under
    // benign traffic; and the randomized wiring's expansion property is
    // what defuses structured worst-case permutations.
    let rows = experiments::topology_comparison(&EvalConfig::tiny());
    let get = |topo: &str, pat: &str| {
        rows.iter()
            .find(|r| r.topology == topo && r.pattern == pat)
            .expect("row")
            .report
            .clone()
    };
    let mb_u = get("multibutterfly", "uniform_random");
    let om_u = get("omega", "uniform_random");
    assert!(
        (om_u.avg_ns / mb_u.avg_ns - 1.0).abs() < 0.3,
        "uniform: omega {} vs mb {}",
        om_u.avg_ns,
        mb_u.avg_ns
    );
    let mb_t = get("multibutterfly", "transpose");
    let om_t = get("omega", "transpose");
    assert!(
        om_t.drop_rate > 10.0 * (mb_t.drop_rate + 1e-4),
        "transpose must punish the structured topology: omega {} vs mb {}",
        om_t.drop_rate,
        mb_t.drop_rate
    );
}

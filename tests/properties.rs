//! Property-based tests over the full stack.
//!
//! The build environment has no `proptest`, so each property is exercised
//! with a deterministic, seed-derived generator loop: `StreamRng::named`
//! provides the case inputs, `CASES` iterations per property, and every
//! assertion message carries the case index so failures reproduce exactly.

use baldur::phy::eightbtenb::{
    max_run_length, Code10, Decoder, Disparity, Encoder, Symbol, VALID_CONTROL,
};
use baldur::phy::length_code::LengthCode;
use baldur::phy::waveform::Waveform;
use baldur::sim::rng::StreamRng;
use baldur::sim::stats::{Reservoir, Streaming};
use baldur::topo::graph::NodeId;
use baldur::topo::multibutterfly::MultiButterfly;

/// Cases per property; all derived from this fixed seed.
const CASES: u64 = 64;
const SEED: u64 = 0xba1d_u64;

fn case_rng(label: &'static str, case: u64) -> StreamRng {
    StreamRng::named(SEED, label, case)
}

/// 8b/10b: any byte stream round-trips, never exceeds run length 5,
/// and keeps bounded disparity.
#[test]
fn eightbtenb_roundtrip() {
    for case in 0..CASES {
        let mut rng = case_rng("8b10b", case);
        let len = rng.gen_range(1usize..200);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=u8::MAX)).collect();
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        let mut bits = Vec::new();
        for &b in &bytes {
            let c = enc.encode_data(b);
            bits.extend_from_slice(&c.bits());
            assert_eq!(dec.decode(c), Ok(Symbol::Data(b)), "case {case}");
        }
        assert!(max_run_length(&bits) <= 5, "case {case}");
    }
}

/// Puts a fresh encoder/decoder pair into the requested running-disparity
/// state. A fresh pair starts at RD−; encoding D.11.0 (0x0B, whose 3b/4b
/// block is unbalanced) flips both to RD+.
fn pair_at(rd: Disparity) -> (Encoder, Decoder) {
    let mut enc = Encoder::new();
    let mut dec = Decoder::new();
    if rd == Disparity::Positive {
        let c = enc.encode_data(0x0B);
        assert_eq!(dec.decode(c), Ok(Symbol::Data(0x0B)));
    }
    assert_eq!(enc.disparity(), rd);
    (enc, dec)
}

/// 8b/10b, exhaustively: every one of the 256 data octets round-trips
/// from *both* running-disparity states, and every emitted group is
/// balanced to within one bit pair (4–6 ones out of 10).
#[test]
fn eightbtenb_exhaustive_roundtrip_both_disparities() {
    for rd in [Disparity::Negative, Disparity::Positive] {
        for byte in 0u16..=255 {
            let byte = byte as u8;
            let (mut enc, mut dec) = pair_at(rd);
            let code = enc.encode_data(byte);
            assert!(
                (4..=6).contains(&code.ones()),
                "{rd:?} D.{byte:#04x}: {} ones",
                code.ones()
            );
            assert_eq!(
                dec.decode(code),
                Ok(Symbol::Data(byte)),
                "{rd:?} D.{byte:#04x}"
            );
        }
    }
}

/// 8b/10b, exhaustively: the running disparity stays within ±1 after
/// *every sub-block* (not just group boundaries) for any octet from
/// either starting state — the invariant that keeps the line DC-balanced.
#[test]
fn eightbtenb_disparity_bounded_after_every_sub_block() {
    for rd0 in [Disparity::Negative, Disparity::Positive] {
        for byte in 0u16..=255 {
            let byte = byte as u8;
            let (mut enc, _) = pair_at(rd0);
            let code = enc.encode_data(byte);
            let six_ones = i32::from(((code.0 >> 4) & 0x3F).count_ones() as u8);
            let four_ones = i32::from((code.0 & 0x0F).count_ones() as u8);
            let mut rd = match rd0 {
                Disparity::Negative => -1i32,
                Disparity::Positive => 1,
            };
            rd += six_ones * 2 - 6;
            assert_eq!(rd.abs(), 1, "{rd0:?} D.{byte:#04x}: after 6b block");
            rd += four_ones * 2 - 4;
            assert_eq!(rd.abs(), 1, "{rd0:?} D.{byte:#04x}: after 4b block");
            // And the encoder's tracked state agrees with the arithmetic.
            let tracked = match enc.disparity() {
                Disparity::Negative => -1,
                Disparity::Positive => 1,
            };
            assert_eq!(rd, tracked, "{rd0:?} D.{byte:#04x}");
        }
    }
}

/// 8b/10b: every control character decodes as `Symbol::Control`, never as
/// data, from both disparity states — so K-codes can safely delimit
/// packets without ever being mistaken for payload bytes.
#[test]
fn eightbtenb_control_codes_never_decode_as_data() {
    for rd in [Disparity::Negative, Disparity::Positive] {
        for &k in &VALID_CONTROL {
            let (mut enc, mut dec) = pair_at(rd);
            let code = enc.encode_control(k);
            let sym = dec
                .decode(code)
                .unwrap_or_else(|e| panic!("{rd:?} K {k:#04x}: {e}"));
            assert_eq!(sym, Symbol::Control(k), "{rd:?} K {k:#04x}");
            assert!(sym.is_control(), "{rd:?} K {k:#04x} decoded as data");
        }
    }
}

/// 8b/10b, exhaustively: over all 1024 possible 10-bit groups from both
/// disparity states, the decoder either rejects the group or yields a
/// symbol that round-trips through a fresh encoder/decoder pair at the
/// same starting state — accepted symbols are always re-transmittable.
#[test]
fn eightbtenb_decoder_accepts_only_coherent_codes() {
    let mut accepted = [0usize; 2];
    for (i, rd) in [Disparity::Negative, Disparity::Positive]
        .into_iter()
        .enumerate()
    {
        for raw in 0u16..1024 {
            let (_, mut dec) = pair_at(rd);
            let Ok(sym) = dec.decode(Code10(raw)) else {
                continue;
            };
            accepted[i] += 1;
            let (mut enc2, mut dec2) = pair_at(rd);
            let reencoded = match sym {
                Symbol::Data(b) => enc2.encode_data(b),
                Symbol::Control(k) => enc2.encode_control(k),
            };
            assert_eq!(
                dec2.decode(reencoded),
                Ok(sym),
                "{rd:?} {raw:#05x}: accepted symbol does not re-transmit"
            );
        }
    }
    // The code space is sparse by design: each state accepts the 256 data
    // octets and 12 control characters, plus bounded alternation slack.
    for (i, n) in accepted.iter().enumerate() {
        assert!(
            (268..=600).contains(n),
            "state {i}: {n} of 1024 groups accepted — table drift?"
        );
    }
}

/// Length code: arbitrary routing-bit strings round-trip.
#[test]
fn length_code_roundtrip() {
    for case in 0..CASES {
        let mut rng = case_rng("lencode", case);
        let n = rng.gen_range(1usize..24);
        let bits: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let start_slots = rng.gen_range(0u64..16);
        let code = LengthCode::paper();
        let start = start_slots * code.slot();
        let w = code.encode(&bits, start);
        let (decoded, _) = code.decode_prefix(&w, code.bit_period / 10);
        assert_eq!(decoded, bits, "case {case}");
    }
}

/// Waveforms: level_at is consistent with the pulse list.
#[test]
fn waveform_pulse_consistency() {
    for case in 0..CASES {
        let mut rng = case_rng("waveform", case);
        let n = rng.gen_range(2usize..40);
        let mut t = 0;
        let mut transitions = Vec::new();
        for _ in 0..n {
            t += rng.gen_range(1u64..1000);
            transitions.push(t);
        }
        let w = Waveform::from_transitions(transitions.clone());
        for (i, &tr) in transitions.iter().enumerate() {
            assert_eq!(w.level_at(tr), i % 2 == 0, "case {case}");
            if tr > 0 {
                assert_eq!(w.level_at(tr - 1), i % 2 == 1, "case {case}");
            }
        }
    }
}

/// Multi-butterfly: every (src, dst, path choice, seed) delivers to
/// the right node — the deliverability invariant under randomized wiring.
#[test]
fn multibutterfly_always_delivers() {
    for case in 0..CASES {
        let mut rng = case_rng("mbfdeliv", case);
        let bits = rng.gen_range(3u32..8);
        let m = rng.gen_range(1u32..5);
        let seed = rng.next_u64();
        let nodes = 1u32 << bits;
        let topo = MultiButterfly::new(nodes, m, seed);
        let src = NodeId(rng.gen_range(0u32..=u32::MAX) % nodes);
        let dst = NodeId(rng.gen_range(0u32..=u32::MAX) % nodes);
        let path = rng.gen_range(0u32..=u32::MAX);
        let (_, reached) = topo.trace_route(src, dst, path);
        assert_eq!(reached, dst, "case {case}");
    }
}

/// Multi-butterfly wiring invariants hold for arbitrary seeds.
#[test]
fn multibutterfly_wiring_valid() {
    for case in 0..CASES {
        let mut rng = case_rng("mbfwire", case);
        let bits = rng.gen_range(2u32..9);
        let m = rng.gen_range(1u32..6);
        let seed = rng.next_u64();
        let topo = MultiButterfly::new(1 << bits, m, seed);
        assert!(topo.validate().is_ok(), "case {case}");
    }
}

/// Streaming stats merge == sequential, for any split point.
#[test]
fn streaming_merge_any_split() {
    for case in 0..CASES {
        let mut rng = case_rng("stream", case);
        let n = rng.gen_range(2usize..200);
        let data: Vec<f64> = (0..n).map(|_| (rng.gen_f64() - 0.5) * 2e6).collect();
        let k = rng.gen_range(0usize..data.len());
        let mut whole = Streaming::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = Streaming::new();
        let mut b = Streaming::new();
        for &x in &data[..k] {
            a.push(x);
        }
        for &x in &data[k..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count(), "case {case}");
        assert!((a.mean() - whole.mean()).abs() < 1e-6, "case {case}");
    }
}

/// Reservoir quantiles are exact below capacity.
#[test]
fn reservoir_exact_quantiles() {
    for case in 0..CASES {
        let mut rng = case_rng("resv", case);
        let n = rng.gen_range(1usize..500);
        let data: Vec<f64> = (0..n).map(|_| rng.gen_f64() * 1e9).collect();
        let mut r = Reservoir::with_capacity(1000);
        for &x in &data {
            r.push(x);
        }
        assert!(r.is_exact(), "case {case}");
        let mut sorted = data.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(r.quantile(0.0), sorted[0], "case {case}");
        assert_eq!(r.quantile(1.0), sorted[n - 1], "case {case}");
    }
}

/// Derived RNG streams are reproducible and label-separated.
#[test]
fn rng_streams_deterministic() {
    for case in 0..CASES {
        let mut meta = case_rng("rng-meta", case);
        let seed = meta.next_u64();
        let idx = meta.next_u64();
        let mut a = StreamRng::named(seed, "prop", idx);
        let mut b = StreamRng::named(seed, "prop", idx);
        assert_eq!(a.next_u64(), b.next_u64(), "case {case}");
    }
}

/// Traffic assignments never self-send and stay in range.
#[test]
fn traffic_assignments_in_range() {
    use baldur::net::traffic::{Assignment, Pattern};
    for case in 0..CASES {
        let mut rng = case_rng("traffic", case);
        let bits = rng.gen_range(3u32..10);
        let seed = rng.next_u64();
        let nodes = 1u32 << bits;
        for pattern in [
            Pattern::RandomPermutation,
            Pattern::Transpose,
            Pattern::Bisection,
            Pattern::GroupPermutation,
            Pattern::Hotspot,
        ] {
            if let Assignment::Pairs(p) = Assignment::build(pattern, nodes, seed) {
                for (i, &d) in p.iter().enumerate() {
                    assert!(d < nodes, "case {case} {}: out of range", pattern.name());
                    // Transpose has fixed points (palindromic addresses)
                    // and the hotspot target sends to its neighbour; all
                    // other patterns are self-send-free.
                    let may_self = matches!(pattern, Pattern::Transpose | Pattern::Hotspot);
                    assert!(
                        d != i as u32 || may_self,
                        "case {case} {}: self-send at {i}",
                        pattern.name()
                    );
                }
            }
        }
    }
}

/// The worst-case drop tool's rate is a probability, and multiplicity
/// never hurts.
#[test]
fn droptool_monotone() {
    use baldur::net::droptool::worst_case;
    use baldur::net::traffic::Pattern;
    for case in 0..16 {
        let mut rng = case_rng("droptool", case);
        let bits = rng.gen_range(5u32..11);
        let seed = rng.next_u64();
        let nodes = 1u32 << bits;
        let mut last = 1.0f64;
        for m in [1u32, 2, 4] {
            let r = worst_case(nodes, m, Pattern::RandomPermutation, seed);
            assert!((0.0..=1.0).contains(&r.drop_rate), "case {case}");
            assert!(
                r.drop_rate <= last + 0.05,
                "case {case} m={m}: {} > {last}",
                r.drop_rate
            );
            last = r.drop_rate;
        }
    }
}

/// Records every (time, payload) it executes; re-schedules a follow-up
/// for payloads divisible by 5 so the queues also see pops interleaved
/// with pushes.
struct Recorder {
    log: Vec<(u64, u32)>,
}

impl baldur::sim::Model for Recorder {
    type Event = u32;
    fn handle(&mut self, now: baldur::sim::Time, ev: u32, sched: &mut baldur::sim::Scheduler<u32>) {
        self.log.push((now.as_ps(), ev));
        if ev.is_multiple_of(5) && ev > 0 {
            sched.schedule_in(
                baldur::sim::Duration::from_ps(u64::from(ev) * 31 + 1),
                ev / 2,
            );
        }
    }
}

/// The calendar queue executes the exact event sequence the binary heap
/// does, including FIFO tie-breaks and re-scheduling mid-run.
#[test]
fn calendar_queue_matches_heap() {
    use baldur::sim::{Simulation, Time};
    for case in 0..CASES {
        let mut rng = case_rng("calendar", case);
        let n = rng.gen_range(1usize..300);
        let ops: Vec<(u64, u32)> = (0..n)
            .map(|_| (rng.gen_range(0u64..1_000_000), rng.gen_range(0u32..1_000)))
            .collect();
        let mut heap = Simulation::new(Recorder { log: Vec::new() });
        let mut cal = Simulation::new_calendar(Recorder { log: Vec::new() });
        for &(t, v) in &ops {
            heap.scheduler_mut().schedule_at(Time::from_ps(t), v);
            cal.scheduler_mut().schedule_at(Time::from_ps(t), v);
        }
        heap.run();
        cal.run();
        assert_eq!(&heap.model().log, &cal.model().log, "case {case}");
    }
}

/// Retransmission hardening: for any parameter draw the backoff timeout
/// schedule is monotone non-decreasing in the attempt number and capped
/// at `max_backoff_exp` doublings; with jitter enabled the schedule stays
/// monotone until the cap is reached and is bit-identical across two
/// same-seed evaluations.
#[test]
fn backoff_schedule_is_monotone_capped_and_reproducible() {
    use baldur::net::config::BaldurParams;
    use baldur::net::faults::jittered_timeout_ps;
    for case in 0..CASES {
        let mut rng = case_rng("backoff", case);
        let mut params = BaldurParams::paper_1k();
        params.base_timeout_ps = rng.gen_range(10_000u64..10_000_000);
        params.max_backoff_exp = rng.gen_range(0u32..12);
        params.retry_jitter_pct = rng.gen_range(0u32..150); // clamped inside
        let seed = rng.gen_range(0u64..u64::MAX);
        let pkt = rng.gen_range(0u32..1_000_000);
        let cap = params.base_timeout_ps << params.max_backoff_exp;
        let mut last_base = 0u64;
        let mut last_jittered = 0u64;
        for attempt in 1..=params.max_backoff_exp + 4 {
            let base = params.backoff_timeout_ps(attempt, 0);
            assert!(base >= last_base, "case {case}: base schedule not monotone");
            assert!(base <= cap, "case {case}: base exceeds the cap");
            let jit = jittered_timeout_ps(&params, seed, pkt, attempt, 0);
            assert_eq!(
                jit,
                jittered_timeout_ps(&params, seed, pkt, attempt, 0),
                "case {case}: jittered schedule not reproducible"
            );
            assert!(jit >= base, "case {case}: jitter may only lengthen");
            assert!(
                jit < 2 * base || params.retry_jitter_pct == 0,
                "case {case}: jitter must stay below one extra doubling"
            );
            if base < cap {
                // Below the cap each base doubles, which dominates any
                // jitter on the previous attempt — monotone by design.
                assert!(
                    jit >= last_jittered,
                    "case {case}: jittered schedule regressed pre-cap"
                );
            }
            last_base = base;
            last_jittered = jit;
        }
        assert_eq!(last_base, cap, "case {case}: schedule never reached cap");
    }
}

/// Overload robustness: for any draw of storm pattern, offered load,
/// admission cap, pacing window, and deadline, both network models
/// account for every generated packet exactly —
/// `generated == delivered + abandoned + expired + ingress_drops` —
/// and the always-on runtime oracle stays quiet. A quiet oracle
/// certifies the bounded-queue invariant (no source queue ever exceeds
/// its admission cap; the occupancy checker runs at every enqueue) and,
/// for the electrical model, the credit balance (credits are unsigned
/// and only decremented behind an availability check, and the drained
/// model verifies every counter returned to capacity — an overdraw or
/// leak anywhere surfaces as a violation).
#[test]
fn overload_storms_conserve_packets_and_bound_queues() {
    use baldur::net::config::{BaldurParams, RouterParams};
    use baldur::net::runner::{run, NetworkKind, RunConfig, Workload};
    use baldur::net::traffic::Pattern;

    for case in 0..16 {
        let mut rng = case_rng("overload", case);
        let nodes = 1u32 << rng.gen_range(4u32..7);
        let pattern = match case % 3 {
            0 => Pattern::UniformRandom,
            1 => Pattern::Incast {
                fanin: (nodes / 4).max(2),
            },
            _ => Pattern::Hotcast,
        };
        let load = [0.5, 1.0, 2.0, 4.0][(case as usize / 3) % 4];
        let cap = rng.gen_range(1u32..12);
        let seed = rng.next_u64();
        let workload = Workload::Storm {
            pattern,
            load,
            packets_per_node: rng.gen_range(8u32..32),
        };

        let mut bp = BaldurParams::paper_1k();
        bp.ingress_cap = cap;
        bp.pacing_window = rng.gen_range(0u32..4);
        bp.deadline_ps = [0, 5_000_000, 20_000_000][case as usize % 3];
        bp.max_backoff_exp = rng.gen_range(2u32..6);
        bp.retry_jitter_pct = rng.gen_range(0u32..100);
        let mut rp = RouterParams::paper();
        rp.nic_queue_cap = cap;
        rp.deadline_ps = bp.deadline_ps;

        for net in [NetworkKind::Baldur(bp), NetworkKind::FatTree { router: rp }] {
            let label = match net {
                NetworkKind::Baldur(_) => "baldur",
                _ => "fattree",
            };
            let r = run(&RunConfig {
                seed,
                ..RunConfig::new(nodes, net, workload)
            });
            assert!(
                r.generated > 0,
                "case {case} {label}: storm offered nothing"
            );
            assert_eq!(
                r.generated,
                r.delivered + r.abandoned + r.expired + r.ingress_drops,
                "case {case} {label}: packet conservation broken"
            );
            assert!(
                r.oracle.is_clean(),
                "case {case} {label}: {} oracle violation(s), first: {:?}",
                r.oracle.total(),
                r.oracle.reports.first()
            );
            if r.delivered > 0 {
                let jain = r.fairness.jain;
                assert!(
                    jain > 0.0 && jain <= 1.0 + 1e-9,
                    "case {case} {label}: Jain index {jain} out of range"
                );
            }
        }
    }
}

/// Struct-of-arrays refactor safety net: for 16 seeded workloads across
/// both packet models ({baldur, fattree}), both traffic shapes
/// ({uniform, incast}), and both scales (64 and 256 nodes), the live
/// SoA state layout and the retired map-based `_baseline` models return
/// byte-identical `LatencyReport`s — every counter, every float bit,
/// the oracle summary, and the conservation ledger included. The whole
/// report derives `PartialEq`, so a single `assert_eq!` covers it all.
#[test]
fn soa_models_match_retired_baselines_byte_identically() {
    use baldur::net::config::{BaldurParams, RouterParams};
    use baldur::net::runner::{run, run_baseline, NetworkKind, RunConfig, Workload};
    use baldur::net::traffic::Pattern;

    for case in 0..16 {
        let mut rng = case_rng("soadiff", case);
        let nodes = if case % 2 == 0 { 64u32 } else { 256 };
        let pattern = if case % 4 < 2 {
            Pattern::UniformRandom
        } else {
            Pattern::Incast {
                fanin: (nodes / 8).max(2),
            }
        };
        let load = [0.3, 0.7, 1.5][case as usize % 3];
        let seed = rng.next_u64();
        let workload = Workload::Storm {
            pattern,
            load,
            packets_per_node: rng.gen_range(4u32..10),
        };
        let mut bp = BaldurParams::paper_for(u64::from(nodes));
        bp.ingress_cap = rng.gen_range(4u32..16);
        bp.pacing_window = rng.gen_range(0u32..3);
        bp.ack_coalesce_ps = [0, 300_000][case as usize % 2];
        let mut rp = RouterParams::paper();
        rp.nic_queue_cap = bp.ingress_cap;
        for net in [NetworkKind::Baldur(bp), NetworkKind::FatTree { router: rp }] {
            let label = net.name();
            let cfg = RunConfig {
                seed,
                ..RunConfig::new(nodes, net, workload)
            };
            let live = run(&cfg);
            let retired = run_baseline(&cfg);
            assert_eq!(
                live, retired,
                "case {case} {label} nodes {nodes}: SoA diverged from baseline"
            );
            assert!(live.generated > 0, "case {case} {label}: empty workload");
        }
    }
}

/// The two scheduler backends (binary heap and calendar queue) deliver
/// byte-identical `(time, seq, event)` pop sequences on any workload —
/// including bursty waves, tight same-timestamp clusters, and the
/// adversarial all-ties case that stresses the FIFO tie-break.
#[test]
fn scheduler_backends_pop_identically() {
    use baldur::sim::{Scheduler, Time};

    for case in 0..CASES {
        let mut rng = case_rng("schddiff", case);
        // Three workload shapes, cycled across cases: bursty (wide
        // random offsets), clustered (tiny offset range, heavy ties),
        // and adversarial (every event at the same instant).
        let shape = case % 3;
        let mut heap = Scheduler::<u64>::new();
        let mut cal = Scheduler::<u64>::new_calendar();
        let mut payload = 0u64;
        let mut interleave = |heap: &mut Scheduler<u64>,
                              cal: &mut Scheduler<u64>,
                              rng: &mut StreamRng,
                              pops: usize,
                              pushes: usize| {
            let base = heap.now().as_ps();
            for _ in 0..pushes {
                let offset = match shape {
                    0 => rng.gen_range(0u64..1_000_000),
                    1 => rng.gen_range(0u64..8),
                    _ => 0,
                };
                let at = Time::from_ps(base + offset);
                heap.schedule_at(at, payload);
                cal.schedule_at(at, payload);
                payload += 1;
            }
            for _ in 0..pops {
                let h = heap.pop_scheduled();
                let c = cal.pop_scheduled();
                assert_eq!(
                    h, c,
                    "case {case} shape {shape}: backends diverged mid-drain"
                );
            }
        };
        for wave in 0..4 {
            let pushes = 50 + (case as usize * 7 + wave * 13) % 150;
            interleave(&mut heap, &mut cal, &mut rng, pushes / 2, pushes);
        }
        loop {
            let h = heap.pop_scheduled();
            let c = cal.pop_scheduled();
            assert_eq!(
                h, c,
                "case {case} shape {shape}: backends diverged at drain"
            );
            if h.is_none() {
                break;
            }
        }
        assert_eq!(heap.events_executed(), cal.events_executed(), "case {case}");
        assert_eq!(heap.now(), cal.now(), "case {case}");
    }
}

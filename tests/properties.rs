//! Property-based tests over the full stack.

use baldur::phy::eightbtenb::{max_run_length, Decoder, Encoder, Symbol};
use baldur::phy::length_code::LengthCode;
use baldur::phy::waveform::Waveform;
use baldur::sim::rng::StreamRng;
use baldur::sim::stats::{Reservoir, Streaming};
use baldur::topo::graph::NodeId;
use baldur::topo::multibutterfly::MultiButterfly;
use proptest::prelude::*;

proptest! {
    /// 8b/10b: any byte stream round-trips, never exceeds run length 5,
    /// and keeps bounded disparity.
    #[test]
    fn eightbtenb_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 1..200)) {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        let mut bits = Vec::new();
        for &b in &bytes {
            let c = enc.encode_data(b);
            bits.extend_from_slice(&c.bits());
            prop_assert_eq!(dec.decode(c), Ok(Symbol::Data(b)));
        }
        prop_assert!(max_run_length(&bits) <= 5);
    }

    /// Length code: arbitrary routing-bit strings round-trip.
    #[test]
    fn length_code_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..24),
                             start_slots in 0u64..16) {
        let code = LengthCode::paper();
        let start = start_slots * code.slot();
        let w = code.encode(&bits, start);
        let (decoded, _) = code.decode_prefix(&w, code.bit_period / 10);
        prop_assert_eq!(decoded, bits);
    }

    /// Waveforms: level_at is consistent with the pulse list.
    #[test]
    fn waveform_pulse_consistency(gaps in proptest::collection::vec(1u64..1000, 2..40)) {
        let mut t = 0;
        let mut transitions = Vec::new();
        for g in gaps {
            t += g;
            transitions.push(t);
        }
        let w = Waveform::from_transitions(transitions.clone());
        for (i, &tr) in transitions.iter().enumerate() {
            prop_assert_eq!(w.level_at(tr), i % 2 == 0);
            if tr > 0 {
                prop_assert_eq!(w.level_at(tr - 1), i % 2 == 1);
            }
        }
    }

    /// Multi-butterfly: every (src, dst, path choice, seed) delivers to
    /// the right node — the deliverability invariant under randomized
    /// wiring.
    #[test]
    fn multibutterfly_always_delivers(
        bits in 3u32..8,
        m in 1u32..5,
        seed in any::<u64>(),
        src in any::<u32>(),
        dst in any::<u32>(),
        path in any::<u32>(),
    ) {
        let nodes = 1u32 << bits;
        let topo = MultiButterfly::new(nodes, m, seed);
        let src = NodeId(src % nodes);
        let dst = NodeId(dst % nodes);
        let (_, reached) = topo.trace_route(src, dst, path);
        prop_assert_eq!(reached, dst);
    }

    /// Multi-butterfly wiring invariants hold for arbitrary seeds.
    #[test]
    fn multibutterfly_wiring_valid(bits in 2u32..9, m in 1u32..6, seed in any::<u64>()) {
        let topo = MultiButterfly::new(1 << bits, m, seed);
        prop_assert!(topo.validate().is_ok());
    }

    /// Streaming stats merge == sequential, for any split point.
    #[test]
    fn streaming_merge_any_split(data in proptest::collection::vec(-1e6f64..1e6, 2..200),
                                 split in any::<prop::sample::Index>()) {
        let k = split.index(data.len());
        let mut whole = Streaming::new();
        for &x in &data { whole.push(x); }
        let mut a = Streaming::new();
        let mut b = Streaming::new();
        for &x in &data[..k] { a.push(x); }
        for &x in &data[k..] { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
    }

    /// Reservoir quantiles are exact below capacity.
    #[test]
    fn reservoir_exact_quantiles(data in proptest::collection::vec(0f64..1e9, 1..500)) {
        let mut r = Reservoir::with_capacity(1000);
        for &x in &data { r.push(x); }
        prop_assert!(r.is_exact());
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(r.quantile(0.0), sorted[0]);
        prop_assert_eq!(r.quantile(1.0), *sorted.last().unwrap());
    }

    /// Derived RNG streams are reproducible and label-separated.
    #[test]
    fn rng_streams_deterministic(seed in any::<u64>(), idx in any::<u64>()) {
        use rand::RngCore;
        let mut a = StreamRng::named(seed, "prop", idx);
        let mut b = StreamRng::named(seed, "prop", idx);
        prop_assert_eq!(a.next_u64(), b.next_u64());
    }

    /// Traffic assignments never self-send and stay in range.
    #[test]
    fn traffic_assignments_in_range(bits in 3u32..10, seed in any::<u64>()) {
        use baldur::net::traffic::{Assignment, Pattern};
        let nodes = 1u32 << bits;
        for pattern in [Pattern::RandomPermutation, Pattern::Transpose,
                        Pattern::Bisection, Pattern::GroupPermutation, Pattern::Hotspot] {
            if let Assignment::Pairs(p) = Assignment::build(pattern, nodes, seed) {
                for (i, &d) in p.iter().enumerate() {
                    prop_assert!(d < nodes, "{}: out of range", pattern.name());
                    // Transpose has fixed points (palindromic addresses)
                    // and the hotspot target sends to its neighbour; all
                    // other patterns are self-send-free.
                    let may_self = matches!(pattern, Pattern::Transpose | Pattern::Hotspot);
                    prop_assert!(d != i as u32 || may_self,
                        "{}: self-send at {i}", pattern.name());
                }
            }
        }
    }

    /// The worst-case drop tool's rate is a probability, and multiplicity
    /// never hurts.
    #[test]
    fn droptool_monotone(bits in 5u32..11, seed in any::<u64>()) {
        use baldur::net::droptool::worst_case;
        use baldur::net::traffic::Pattern;
        let nodes = 1u32 << bits;
        let mut last = 1.0f64;
        for m in [1u32, 2, 4] {
            let r = worst_case(nodes, m, Pattern::RandomPermutation, seed);
            prop_assert!((0.0..=1.0).contains(&r.drop_rate));
            prop_assert!(r.drop_rate <= last + 0.05,
                "m={m}: {} > {last}", r.drop_rate);
            last = r.drop_rate;
        }
    }
}

/// Records every (time, payload) it executes; re-schedules a follow-up
/// for payloads divisible by 5 so the queues also see pops interleaved
/// with pushes.
struct Recorder {
    log: Vec<(u64, u32)>,
}

impl baldur::sim::Model for Recorder {
    type Event = u32;
    fn handle(
        &mut self,
        now: baldur::sim::Time,
        ev: u32,
        sched: &mut baldur::sim::Scheduler<u32>,
    ) {
        self.log.push((now.as_ps(), ev));
        if ev.is_multiple_of(5) && ev > 0 {
            sched.schedule_in(baldur::sim::Duration::from_ps(u64::from(ev) * 31 + 1), ev / 2);
        }
    }
}

proptest! {
    /// The calendar queue executes the exact event sequence the binary
    /// heap does, including FIFO tie-breaks and re-scheduling mid-run.
    #[test]
    fn calendar_queue_matches_heap(ops in proptest::collection::vec((0u64..1_000_000, 0u32..1_000), 1..300)) {
        use baldur::sim::{Simulation, Time};
        let mut heap = Simulation::new(Recorder { log: Vec::new() });
        let mut cal = Simulation::new_calendar(Recorder { log: Vec::new() });
        for &(t, v) in &ops {
            heap.scheduler_mut().schedule_at(Time::from_ps(t), v);
            cal.scheduler_mut().schedule_at(Time::from_ps(t), v);
        }
        heap.run();
        cal.run();
        prop_assert_eq!(&heap.model().log, &cal.model().log);
    }
}

//! Thread-count invariance: the parallel sweep engine must produce
//! byte-identical rendered output at any worker count.
//!
//! This is the determinism contract of `baldur::sweep` + `sim::par`:
//! results come back in submission order and every run is a pure function
//! of its `RunConfig`, so `BALDUR_THREADS=1` and `=8` (or any other
//! count) render the same CSV and JSON bytes. `ci.sh` runs this suite as
//! a tier-1 gate.

use baldur::experiments::{figure6_on, EvalConfig};
use baldur::registry::{self, Params};
use baldur::sweep::Sweep;

/// Runs `f` with the default panic hook replaced by a silent one, so
/// deliberately-panicking jobs don't spray backtraces into test output.
fn quietly<R>(f: impl FnOnce() -> R) -> R {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = f();
    std::panic::set_hook(hook);
    r
}

/// The tiny Figure 6 sweep, rendered to CSV and JSON, at `threads` —
/// resolved through the experiment registry by name, so this gate covers
/// the exact code path the bench binaries run.
fn fig6_bytes(threads: usize) -> (String, String) {
    let spec = registry::get("fig6").expect("fig6 is registered");
    let cfg = EvalConfig {
        threads,
        ..EvalConfig::tiny()
    };
    let mut params = Params::for_spec(spec, cfg);
    params
        .set(spec, "loads", "0.3,0.7")
        .expect("loads is a declared fig6 axis");
    let sw = Sweep::new(threads);
    let out = (spec.run)(&sw, &params).expect("fig6 sweep succeeds");
    (
        out.csv.expect("fig6 renders CSV"),
        out.json.expect("fig6 renders JSON"),
    )
}

#[test]
fn fig6_is_byte_identical_at_1_2_and_8_threads() {
    let (csv1, json1) = fig6_bytes(1);
    for threads in [2, 8] {
        let (csv, json) = fig6_bytes(threads);
        assert!(
            csv == csv1,
            "fig6 CSV diverged between 1 and {threads} threads"
        );
        assert!(
            json == json1,
            "fig6 JSON diverged between 1 and {threads} threads"
        );
    }
}

/// The overload storm sweep, rendered to CSV and JSON through the
/// registry, at `threads` — the seeded overload dynamics (admission
/// drops, deadline expiry, jittered retries) must not leak any
/// thread-count dependence into the bytes.
fn overload_bytes(threads: usize) -> (String, String) {
    let spec = registry::get("overload").expect("overload is registered");
    let cfg = EvalConfig {
        threads,
        ..EvalConfig::tiny()
    };
    let mut params = Params::for_spec(spec, cfg);
    params
        .set(spec, "loads", "0.5,4")
        .expect("loads is a declared overload axis");
    params
        .set(spec, "patterns", "incast,hotcast")
        .expect("patterns is a declared overload axis");
    let sw = Sweep::new(threads);
    let out = (spec.run)(&sw, &params).expect("overload sweep succeeds");
    (
        out.csv.expect("overload renders CSV"),
        out.json.expect("overload renders JSON"),
    )
}

#[test]
fn overload_is_byte_identical_at_1_2_and_8_threads() {
    let (csv1, json1) = overload_bytes(1);
    for threads in [2, 8] {
        let (csv, json) = overload_bytes(threads);
        assert!(
            csv == csv1,
            "overload CSV diverged between 1 and {threads} threads"
        );
        assert!(
            json == json1,
            "overload JSON diverged between 1 and {threads} threads"
        );
    }
}

#[test]
fn failed_slots_are_submission_ordered_at_any_thread_count() {
    // Panic isolation must not cost determinism: with seeded panics in
    // the job function, the full slot vector — `Ok` rows and `Err`
    // rows alike — renders identically at 1, 2, and 8 workers.
    fn slots_debug(threads: usize) -> String {
        let sw = Sweep::new(threads);
        let items: Vec<u64> = (0..24).collect();
        let slots = sw.try_map("seeded-panics", items, |&x| {
            assert!(x % 5 != 2, "seeded panic on item {x}");
            x * x
        });
        format!("{slots:?}")
    }
    quietly(|| {
        let base = slots_debug(1);
        assert!(base.contains("seeded panic on item 2"), "{base}");
        assert!(base.contains("Ok(0)") && base.contains("Ok(529)"), "{base}");
        for threads in [2, 8] {
            assert!(
                slots_debug(threads) == base,
                "failure slots diverged between 1 and {threads} threads"
            );
        }
    });
}

#[test]
fn cached_sweep_replays_identically_across_thread_counts() {
    let dir = std::env::temp_dir().join(format!("baldur-thread-invariance-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = EvalConfig::tiny();
    let loads = [0.5];

    // Cold run at 2 threads populates the cache; a warm run at 8 threads
    // must replay every job and render the same bytes (the cache key
    // deliberately excludes the thread count).
    let cold = Sweep::new(2).with_cache_dir(&dir);
    let rows_cold = figure6_on(&cold, &cfg, &loads);
    assert_eq!(cold.totals().1, 0, "cold run cannot hit");

    let warm = Sweep::new(8).with_cache_dir(&dir);
    let rows_warm = figure6_on(&warm, &cfg, &loads);
    let (jobs, hits) = warm.totals();
    assert_eq!(jobs, hits, "warm run must be answered fully from cache");

    assert!(
        baldur::csv::fig6(&rows_cold) == baldur::csv::fig6(&rows_warm),
        "cached replay rendered different CSV bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

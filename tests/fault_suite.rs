//! Fault-injection suite: the CI smoke contract (conservation +
//! determinism under failures) and the degradation-curve shape.
//!
//! Runs on a small topology so the whole file finishes in seconds; the
//! same checks at sweep scale live in `baldur-bench --bin faults
//! --smoke`. Under `--features validate` every run here additionally
//! passes the models' drained-state audits (no packet leaked: each one
//! delivered, dropped, or GaveUp).

use baldur::prelude::*;

const SEED: u64 = 0x5EED_FA17;

fn workload(packets_per_node: u32) -> Workload {
    Workload::Synthetic {
        pattern: Pattern::UniformRandom,
        load: 0.5,
        packets_per_node,
    }
}

fn faulted_networks() -> Vec<(String, NetworkKind)> {
    NetworkKind::paper_lineup(64)
        .into_iter()
        .filter(|(_, n)| !matches!(n, NetworkKind::Ideal))
        .collect()
}

fn run_at(network: NetworkKind, fraction: f64) -> LatencyReport {
    let mut cfg = RunConfig::new(64, network, workload(30))
        .with_faults(FaultPlan::degradation(SEED, fraction));
    cfg.seed = SEED;
    baldur::run(&cfg)
}

/// The golden smoke check: 5% failures, fixed seed — packet conservation
/// holds at drain and the run is bit-reproducible, on every network that
/// can fail.
#[test]
fn five_percent_failures_conserve_packets_and_reproduce() {
    for (name, network) in faulted_networks() {
        let a = run_at(network.clone(), 0.05);
        let b = run_at(network, 0.05);
        assert_eq!(
            a.delivered + a.abandoned,
            a.generated,
            "{name}: packets leaked under faults"
        );
        assert!(a.generated > 0, "{name}");
        assert_eq!(a.delivered, b.delivered, "{name}");
        assert_eq!(a.abandoned, b.abandoned, "{name}");
        assert_eq!(a.avg_ns.to_bits(), b.avg_ns.to_bits(), "{name}");
        assert_eq!(a.p99_ns.to_bits(), b.p99_ns.to_bits(), "{name}");
        assert_eq!(a.retransmissions, b.retransmissions, "{name}");
    }
}

/// Kill sets nest, so goodput is monotone non-increasing in the failed
/// fraction — the degradation curve can never zig-zag.
#[test]
fn goodput_degrades_monotonically_in_the_failed_fraction() {
    for (name, network) in faulted_networks() {
        let mut last = f64::INFINITY;
        for fraction in [0.0, 0.05, 0.10, 0.20] {
            let r = run_at(network.clone(), fraction);
            let goodput = r.delivery_ratio();
            assert!(
                goodput <= last + 1e-12,
                "{name}: goodput rose from {last} to {goodput} at fraction {fraction}"
            );
            last = goodput;
        }
        // And 20% failures must actually bite.
        assert!(last < 1.0, "{name}: no degradation at 20% failures");
    }
}

/// A fault-free plan (fraction 0) is bit-identical to no plan at all:
/// the fault machinery draws no randomness until something actually
/// fails.
#[test]
fn empty_fault_plan_matches_fault_free_run() {
    for (name, network) in faulted_networks() {
        let faulted = run_at(network.clone(), 0.0);
        let mut cfg = RunConfig::new(64, network, workload(30));
        cfg.seed = SEED;
        let plain = baldur::run(&cfg);
        assert_eq!(plain.delivered, faulted.delivered, "{name}");
        assert_eq!(plain.abandoned, 0, "{name}");
        assert_eq!(plain.avg_ns.to_bits(), faulted.avg_ns.to_bits(), "{name}");
        assert_eq!(plain.p99_ns.to_bits(), faulted.p99_ns.to_bits(), "{name}");
    }
}

/// A mid-run fail/revive staircase produces per-epoch rows whose goodput
/// dips in the failure epoch and recovers after revival.
#[test]
fn staircase_plan_reports_degradation_epochs() {
    let epoch_ps = 50_000_000; // 50 us per epoch
    let plan = FaultPlan::staircase(SEED, epoch_ps, &[0.0, 0.15, 0.0]);
    let mut cfg = RunConfig::new(
        64,
        NetworkKind::Baldur(BaldurParams::paper_for(64)),
        workload(200),
    )
    .with_faults(plan);
    cfg.seed = SEED;
    let r = baldur::run(&cfg);
    assert_eq!(r.epochs.len(), 3, "{:?}", r.epochs);
    let goodputs: Vec<f64> = r.epochs.iter().map(|e| e.goodput()).collect();
    assert!(
        goodputs[1] < goodputs[0],
        "failure epoch must dip: {goodputs:?}"
    );
    assert!(
        goodputs[2] > goodputs[1],
        "revival epoch must recover: {goodputs:?}"
    );
    assert_eq!(r.delivered + r.abandoned, r.generated);
}

/// The electrical baselines abandon packets at dead routers but never
/// wedge: credits are refunded upstream, so the rest of the fabric keeps
/// delivering and the run drains.
#[test]
fn electrical_networks_stay_live_at_heavy_failures() {
    for (name, network) in faulted_networks() {
        if matches!(network, NetworkKind::Baldur(_)) {
            continue;
        }
        let r = run_at(network, 0.20);
        assert!(r.delivered > 0, "{name}: nothing delivered at 20%");
        assert!(r.abandoned > 0, "{name}: 20% failures lost nothing");
        assert_eq!(r.delivered + r.abandoned, r.generated, "{name}");
    }
}

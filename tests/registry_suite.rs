//! Registry completeness suite: the experiment registry is the single
//! source of truth for what this repo can reproduce, so every spec must
//! be (a) reachable from a bench binary and `all_figures`, (b) backed by
//! a golden snapshot or explicitly exempt, and (c) fully describable —
//! its `--describe` document round-trips through the vendored serde.
//!
//! `ci.sh` runs this suite by name in the `registry-completeness` step.

use std::collections::BTreeSet;
use std::path::Path;

use baldur::experiments::EvalConfig;
use baldur::registry::{self, Params};

/// Names with `golden: None`, listed explicitly: adding an experiment
/// without a golden snapshot is a deliberate decision recorded here, not
/// a silent default. The console-only and JSON-only artifacts land here;
/// everything with a CSV renderer is snapshot-pinned.
const GOLDEN_EXEMPT: &[&str] = &[
    "fig9",
    "saturation",
    "droptool",
    "reliability",
    "awgr",
    "buffers",
    "ablation",
    "topologies",
    "fig5",
    "tables34",
    "packaging",
    "perf",
    // Timing/RSS columns are machine measurements; the deterministic
    // projection is gated by the experiment's own `--smoke` mode and
    // unit tests instead of a byte snapshot.
    "scaling",
];

/// Snapshots under `results/golden/` owned by repo tooling rather than a
/// registered experiment. Each must be pinned by its own freshness test
/// (the lint report by `tests/lint_wall.rs::lint_json_snapshot_is_fresh`).
const TOOL_GOLDENS: &[&str] = &["lint.json", "perf_ops.json"];

fn repo_path(rel: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

#[test]
fn every_spec_has_a_bin_wrapper_and_vice_versa() {
    let bin_dir = repo_path("crates/bench/src/bin");
    let mut wrapped: BTreeSet<String> = BTreeSet::new();
    let mut saw_all_figures = false;
    for entry in std::fs::read_dir(&bin_dir).expect("read bench bin dir") {
        let path = entry.expect("walk bench bin dir").path();
        let source = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        if source.contains("all_figures_main()") {
            saw_all_figures = true;
            continue;
        }
        let Some(start) = source.find("registry_main(\"") else {
            panic!(
                "{} neither calls registry_main nor all_figures_main",
                path.display()
            );
        };
        let rest = &source[start + "registry_main(\"".len()..];
        let name = &rest[..rest.find('"').expect("closing quote")];
        assert!(
            wrapped.insert(name.to_string()),
            "two bench binaries wrap experiment `{name}`"
        );
    }
    assert!(saw_all_figures, "no all_figures binary found");

    let registered: BTreeSet<String> = registry::all().iter().map(|s| s.name.to_string()).collect();
    assert_eq!(
        wrapped, registered,
        "bench binaries and registry disagree (left: wrapped, right: registered)"
    );
}

#[test]
fn every_spec_runs_in_all_figures_with_valid_overrides() {
    // `all_figures` iterates `registry::all()` and applies each spec's
    // declared overrides; a typo'd axis name in an override would only
    // surface at runtime, so validate them all eagerly here.
    let cfg = EvalConfig::tiny();
    for spec in registry::all() {
        let mut params = Params::for_spec(spec, cfg);
        for (axis, value) in (spec.all_figures)(&cfg) {
            params
                .set(spec, axis, &value)
                .unwrap_or_else(|e| panic!("spec `{}` all_figures overrides: {e}", spec.name));
        }
    }
}

#[test]
fn every_spec_is_golden_backed_or_explicitly_exempt() {
    let exempt: BTreeSet<&str> = GOLDEN_EXEMPT.iter().copied().collect();
    assert_eq!(
        exempt.len(),
        GOLDEN_EXEMPT.len(),
        "duplicate names in GOLDEN_EXEMPT"
    );
    let mut claimed: BTreeSet<String> = BTreeSet::new();
    for spec in registry::all() {
        match spec.golden {
            Some(file) => {
                assert!(
                    !exempt.contains(spec.name),
                    "`{}` declares a golden but is listed exempt",
                    spec.name
                );
                let path = repo_path("results/golden").join(file);
                assert!(
                    path.is_file(),
                    "`{}` declares golden `{file}` but {} does not exist \
                     (create it with ./ci.sh --bless)",
                    spec.name,
                    path.display()
                );
                assert!(
                    claimed.insert(file.to_string()),
                    "golden `{file}` claimed by two specs"
                );
            }
            None => assert!(
                exempt.contains(spec.name),
                "`{}` has no golden snapshot and is not in GOLDEN_EXEMPT — \
                 add a golden or record the exemption",
                spec.name
            ),
        }
    }
    for name in &exempt {
        assert!(
            registry::get(name).is_some(),
            "GOLDEN_EXEMPT names unknown experiment `{name}`"
        );
    }
    // Every snapshot on disk must be claimed, or it is dead weight that
    // the golden suite silently stops checking.
    for entry in std::fs::read_dir(repo_path("results/golden")).expect("read results/golden") {
        let name = entry
            .expect("walk results/golden")
            .file_name()
            .to_string_lossy()
            .into_owned();
        assert!(
            claimed.contains(&name) || TOOL_GOLDENS.contains(&name.as_str()),
            "golden snapshot `{name}` is claimed by no registered experiment \
             (tool-owned snapshots must be listed in TOOL_GOLDENS)"
        );
    }
}

#[test]
fn every_descriptor_round_trips_through_vendored_serde() {
    for spec in registry::all() {
        let doc = registry::describe(spec);
        let text = serde_json::to_string_pretty(&doc)
            .unwrap_or_else(|e| panic!("serialize `{}` descriptor: {e:?}", spec.name));
        let back: registry::Descriptor = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("reparse `{}` descriptor: {e:?}", spec.name));
        assert_eq!(back, doc, "`{}` descriptor did not round-trip", spec.name);
    }
}

/// Markers bracketing the generated experiment table in EXPERIMENTS.md.
const MD_BEGIN: &str = "<!-- registry:begin -->";
const MD_END: &str = "<!-- registry:end -->";

#[test]
fn experiments_md_table_matches_registry() {
    // The docs table is generated from `registry::markdown_table()`,
    // never hand-edited; regenerate it with
    // `BALDUR_BLESS=1 cargo test -q --test registry_suite`.
    let path = repo_path("EXPERIMENTS.md");
    let doc = std::fs::read_to_string(&path).expect("read EXPERIMENTS.md");
    let start = doc
        .find(MD_BEGIN)
        .unwrap_or_else(|| panic!("EXPERIMENTS.md lacks the `{MD_BEGIN}` marker"))
        + MD_BEGIN.len();
    let end = doc
        .find(MD_END)
        .unwrap_or_else(|| panic!("EXPERIMENTS.md lacks the `{MD_END}` marker"));
    let want = format!("\n{}", registry::markdown_table());
    if std::env::var_os("BALDUR_BLESS").is_some() {
        let blessed = format!("{}{}{}", &doc[..start], want, &doc[end..]);
        std::fs::write(&path, blessed).expect("bless EXPERIMENTS.md");
        eprintln!("blessed {}", path.display());
        return;
    }
    assert!(
        doc[start..end] == want,
        "the EXPERIMENTS.md experiment table is stale — regenerate it with \
         `BALDUR_BLESS=1 cargo test -q --test registry_suite`"
    );
}

#[test]
fn registry_names_are_unique_and_listable() {
    let mut seen = BTreeSet::new();
    for spec in registry::all() {
        assert!(
            seen.insert(spec.name),
            "duplicate registry name {}",
            spec.name
        );
    }
    let table = registry::list_table();
    for spec in registry::all() {
        assert!(table.contains(spec.name), "--list omits `{}`", spec.name);
    }
    let md = registry::markdown_table();
    for spec in registry::all() {
        assert!(
            md.contains(&format!("| `{}` ", spec.name)),
            "markdown table omits `{}`",
            spec.name
        );
    }
}

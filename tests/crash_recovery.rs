//! Crash recovery: a sweep subprocess is SIGKILLed mid-run, then rerun
//! with `--resume`; the resumed run must confirm prior completions from
//! the journal and render byte-identical figure output.
//!
//! The child process is this same test binary re-executed with the
//! `child_sweep_worker` test selected and `BALDUR_CRASH_RECOVERY_CHILD`
//! set — the standard self-exec trick for subprocess tests without a
//! helper binary. `ci.sh` runs this suite as the `crash-recovery-smoke`
//! tier-1 gate.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

use baldur::experiments::{figure6_on, EvalConfig};
use baldur::sweep::Sweep;

const CHILD_ENV: &str = "BALDUR_CRASH_RECOVERY_CHILD";
const CACHE_ENV: &str = "BALDUR_CRASH_CACHE_DIR";
const RESUME_ENV: &str = "BALDUR_CRASH_RESUME";
const CSV_ENV: &str = "BALDUR_CRASH_CSV_OUT";
const STATS_ENV: &str = "BALDUR_CRASH_STATS_OUT";

const LOADS: [f64; 2] = [0.3, 0.7];

fn child_config() -> EvalConfig {
    EvalConfig {
        threads: 1,
        ..EvalConfig::tiny()
    }
}

/// Not a test of its own: the subprocess body. Without the guard env
/// var (every ordinary `cargo test` run) it returns immediately.
#[test]
fn child_sweep_worker() {
    if std::env::var(CHILD_ENV).is_err() {
        return;
    }
    let cache_dir = std::env::var(CACHE_ENV).expect("child needs a cache dir");
    let resume = std::env::var(RESUME_ENV).is_ok_and(|v| v == "1");
    let cfg = child_config();
    let sw = Sweep::new(cfg.threads)
        .with_resume(resume)
        .with_cache_dir(&cache_dir);
    let rows = figure6_on(&sw, &cfg, &LOADS);
    let (jobs, hits) = sw.totals();
    std::fs::write(
        std::env::var(CSV_ENV).expect("child needs a CSV path"),
        baldur::csv::fig6(&rows),
    )
    .expect("write child CSV");
    std::fs::write(
        std::env::var(STATS_ENV).expect("child needs a stats path"),
        format!("jobs={jobs}\nhits={hits}\nresumed={}\n", sw.resumed_total()),
    )
    .expect("write child stats");
}

/// Spawns the child with the given resume flag against `dir`.
fn spawn_child(dir: &Path, resume: bool) -> std::process::Child {
    Command::new(std::env::current_exe().expect("current test binary"))
        .args(["child_sweep_worker", "--exact"])
        .env(CHILD_ENV, "1")
        .env(CACHE_ENV, dir.join("cache"))
        .env(RESUME_ENV, if resume { "1" } else { "0" })
        .env(CSV_ENV, dir.join("fig6.csv"))
        .env(STATS_ENV, dir.join("stats.txt"))
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn child sweep")
}

/// Counts completed cache entries (`*.json`; the journal is `.jsonl`
/// and a torn in-flight temp file has a `.tmp.<pid>` suffix, so neither
/// is counted).
fn cache_entries(cache: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(cache) else {
        return 0;
    };
    entries
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .count()
}

#[test]
fn sigkill_mid_sweep_then_resume_is_byte_identical() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("baldur-crash-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    let cache = dir.join("cache");

    // Run A: kill it once a few jobs have landed in the cache. If the
    // sweep outruns the poll and finishes first, that's fine too — the
    // resume run below then confirms *every* job from the journal.
    let mut a = spawn_child(&dir, false);
    let deadline = Instant::now() + Duration::from_secs(300);
    let mut finished_early = false;
    while cache_entries(&cache) < 3 {
        if let Some(status) = a.try_wait().expect("poll child A") {
            assert!(status.success(), "child A failed: {status}");
            finished_early = true;
            break;
        }
        assert!(
            Instant::now() < deadline,
            "child A produced <3 cache entries in 300s"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    if !finished_early {
        a.kill().expect("SIGKILL child A");
        a.wait().expect("reap child A");
    }
    let survivors = cache_entries(&cache);
    assert!(
        survivors >= 3 || finished_early,
        "no progress to resume from"
    );

    // Run B resumes: it must succeed, confirm prior completions from
    // the journal, and render exactly the reference bytes.
    let status = spawn_child(&dir, true).wait().expect("run child B");
    assert!(status.success(), "resumed child B failed: {status}");

    let stats = std::fs::read_to_string(dir.join("stats.txt")).expect("child B stats");
    let resumed: usize = stats
        .lines()
        .find_map(|l| l.strip_prefix("resumed="))
        .expect("resumed= line")
        .parse()
        .expect("resumed count");
    assert!(resumed > 0, "resume confirmed no journaled jobs:\n{stats}");

    let cfg = child_config();
    let reference = baldur::csv::fig6(&figure6_on(&Sweep::new(1), &cfg, &LOADS));
    let resumed_csv = std::fs::read_to_string(dir.join("fig6.csv")).expect("child B CSV");
    assert!(
        resumed_csv == reference,
        "resumed run rendered different CSV bytes than an uncached run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

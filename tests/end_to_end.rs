//! Cross-crate integration: every network model runs every workload type
//! end to end, and the paper's qualitative orderings hold.

use baldur::prelude::*;

fn synth(pattern: Pattern, load: f64) -> Workload {
    Workload::Synthetic {
        pattern,
        load,
        packets_per_node: 50,
    }
}

#[test]
fn all_networks_deliver_all_patterns() {
    for pattern in [
        Pattern::RandomPermutation,
        Pattern::Transpose,
        Pattern::Bisection,
        Pattern::GroupPermutation,
    ] {
        for (name, network) in NetworkKind::paper_lineup(64) {
            let cfg = RunConfig::new(64, network, synth(pattern, 0.2));
            let r = baldur::run(&cfg);
            assert!(
                r.delivery_ratio() > 0.99,
                "{name}/{}: {} of {}",
                pattern.name(),
                r.delivered,
                r.generated
            );
        }
    }
}

#[test]
fn ideal_lower_bounds_everyone() {
    for (name, network) in NetworkKind::paper_lineup(64) {
        let cfg = RunConfig::new(64, network, synth(Pattern::Bisection, 0.3));
        let r = baldur::run(&cfg);
        assert!(r.avg_ns >= 199.9, "{name}: {}", r.avg_ns);
        assert!(r.p99_ns >= r.avg_ns * 0.99, "{name}");
    }
}

#[test]
fn baldur_beats_every_electrical_network() {
    let mut results = std::collections::HashMap::new();
    for (name, network) in NetworkKind::paper_lineup(64) {
        let cfg = RunConfig::new(64, network, synth(Pattern::RandomPermutation, 0.5));
        results.insert(name, baldur::run(&cfg).avg_ns);
    }
    for rival in ["electrical_mb", "dragonfly", "fattree"] {
        assert!(
            results["baldur"] < results[rival],
            "baldur {} vs {rival} {}",
            results["baldur"],
            results[rival]
        );
    }
}

#[test]
fn closed_loop_ping_pong_emphasizes_latency() {
    // Per paper Sec. V-B: in ping-pong the serialization dependency makes
    // switch/header latency dominate, so Baldur's advantage over the
    // electrical networks is at least as large as in open loop.
    let mut avg = std::collections::HashMap::new();
    for (name, network) in NetworkKind::paper_lineup(64) {
        let cfg = RunConfig::new(64, network, Workload::PingPong1 { rounds: 20 });
        avg.insert(name, baldur::run(&cfg).avg_ns);
    }
    assert!(avg["baldur"] < avg["fattree"] / 2.0, "{avg:?}");
    assert!(avg["baldur"] < avg["electrical_mb"], "{avg:?}");
}

#[test]
fn hpc_traces_complete_on_all_networks() {
    let wl = Workload::Hpc {
        app: HpcApp::MultiGrid,
        params: TraceParams {
            iterations: 1,
            halo_packets: 2,
            compute_ps: 100_000,
        },
    };
    for (name, network) in NetworkKind::paper_lineup(64) {
        let cfg = RunConfig::new(64, network, wl);
        let r = baldur::run(&cfg);
        assert!(r.delivery_ratio() > 0.99, "{name}");
        assert!(r.generated > 0, "{name}");
    }
}

#[test]
fn fb_trace_hurts_hierarchical_networks_most() {
    // The paper's FB result: dragonfly/fat-tree suffer far more than
    // Baldur on the distance-heavy FillBoundary exchange.
    let wl = Workload::Hpc {
        app: HpcApp::FillBoundary,
        params: TraceParams::default_scale(),
    };
    let mut avg = std::collections::HashMap::new();
    for (name, network) in NetworkKind::paper_lineup(64) {
        let cfg = RunConfig::new(64, network, wl);
        avg.insert(name, baldur::run(&cfg).avg_ns);
    }
    assert!(avg["dragonfly"] > 1.5 * avg["baldur"], "{avg:?}");
    assert!(avg["fattree"] > avg["baldur"], "{avg:?}");
}
